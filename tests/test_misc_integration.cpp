// Remaining integration corners: the modeled-CPU billing hook, a larger
// real-socket group (n = 7, f = 2), and cross-transport behavioural parity
// of the consensus services.
#include <gtest/gtest.h>

#include <thread>

#include "net_helpers.h"
#include "ritas/context.h"
#include "sim_helpers.h"

namespace ritas {
namespace {

TEST(ChargeCpu, DelaysSubsequentTraffic) {
  // Billing modeled CPU to a host must push its later sends back in
  // simulated time.
  sim::Scheduler sched;
  sim::SimNetwork net(sched, sim::LanModelConfig{}, 4, 1);
  std::vector<sim::Time> arrivals;
  net.set_deliver([&](ProcessId, ProcessId, Slice) { arrivals.push_back(sched.now()); });
  net.submit(0, 1, Bytes(10, 0));
  sched.run();
  const sim::Time baseline = arrivals.at(0);

  sim::Scheduler sched2;
  sim::SimNetwork net2(sched2, sim::LanModelConfig{}, 4, 1);
  std::vector<sim::Time> arrivals2;
  net2.set_deliver([&](ProcessId, ProcessId, Slice) { arrivals2.push_back(sched2.now()); });
  net2.charge(0, 5 * sim::kMillisecond);  // e.g. one RSA signature
  net2.submit(0, 1, Bytes(10, 0));
  sched2.run();
  EXPECT_GE(arrivals2.at(0), baseline + 5 * sim::kMillisecond);
}

TEST(ChargeCpu, ReachesTheSimThroughTheStack) {
  test::Cluster c(test::fast_lan(4, 3));
  const sim::Time t0 = c.now();
  c.stack(0).charge_cpu(1'000'000);
  // Billing alone does not advance the clock; it reserves host CPU, so the
  // next message from p0 lands later than an uncharged one would.
  EXPECT_EQ(c.now(), t0);
  SUCCEED();
}

TEST(LargeGroupTcp, SevenNodeSessionToleratesTwoFaults) {
  // n = 7 over real sockets: all services function; we stop two nodes
  // mid-session and the remaining five still reach atomic agreement.
  constexpr std::uint32_t kN = 7;
  const auto peers = test::local_peers(test::free_ports(kN));
  std::vector<std::unique_ptr<Context>> nodes;
  for (std::uint32_t p = 0; p < kN; ++p) {
    Context::Options o;
    o.n = kN;
    o.self = p;
    o.peers = peers;
    o.master_secret = to_bytes("seven-master");
    o.rng_seed = 4000 + p;
    nodes.push_back(std::make_unique<Context>(o));
  }
  {
    std::vector<std::thread> starters;
    for (auto& n : nodes) starters.emplace_back([&n] { n->start(); });
    for (auto& t : starters) t.join();
  }

  // Round 1: everyone participates in one binary consensus.
  {
    std::array<int, kN> d{};
    std::vector<std::thread> ts;
    for (std::uint32_t p = 0; p < kN; ++p) {
      ts.emplace_back([&, p] { d[p] = nodes[p]->bc(true) ? 1 : 0; });
    }
    for (auto& t : ts) t.join();
    for (int v : d) EXPECT_EQ(v, 1);
  }

  // Kill two nodes (f = 2 for n = 7), then atomic-broadcast through the
  // survivors.
  nodes[5]->stop();
  nodes[6]->stop();
  for (std::uint32_t p = 0; p < 5; ++p) {
    nodes[p]->ab_bcast(to_bytes("survivor-" + std::to_string(p)));
  }
  std::array<std::vector<std::string>, 5> order;
  for (std::uint32_t p = 0; p < 5; ++p) {
    for (int i = 0; i < 5; ++i) {
      order[p].push_back(to_string(nodes[p]->ab_recv().payload));
    }
  }
  for (std::uint32_t p = 1; p < 5; ++p) EXPECT_EQ(order[p], order[0]);
  for (auto& n : nodes) n->stop();
}

TEST(TransportParity, SimAndTcpAgreeOnServiceSemantics) {
  // The same MVC workload through the simulator and through real sockets
  // must produce the same decision (the protocols are transport-agnostic).
  // Sim side:
  test::Cluster c(test::fast_lan(4, 5));
  auto sim_cap = test::run_mvc(
      c, {to_bytes("parity"), to_bytes("parity"), to_bytes("parity"),
          to_bytes("parity")});
  ASSERT_TRUE(sim_cap.all_set(c.correct_set()));
  ASSERT_TRUE(sim_cap.got[0]->has_value());

  // TCP side:
  const auto peers = test::local_peers(test::free_ports(4));
  std::vector<std::unique_ptr<Context>> nodes;
  for (std::uint32_t p = 0; p < 4; ++p) {
    Context::Options o;
    o.n = 4;
    o.self = p;
    o.peers = peers;
    o.master_secret = to_bytes("parity-master");
    nodes.push_back(std::make_unique<Context>(o));
  }
  {
    std::vector<std::thread> starters;
    for (auto& n : nodes) starters.emplace_back([&n] { n->start(); });
    for (auto& t : starters) t.join();
  }
  std::array<std::optional<Bytes>, 4> tcp_decision;
  std::vector<std::thread> ts;
  for (std::uint32_t p = 0; p < 4; ++p) {
    ts.emplace_back([&, p] { tcp_decision[p] = nodes[p]->mvc(to_bytes("parity")); });
  }
  for (auto& t : ts) t.join();
  for (std::uint32_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(tcp_decision[p].has_value());
    EXPECT_EQ(*tcp_decision[p], **sim_cap.got[0]);
  }
  for (auto& n : nodes) n->stop();
}

}  // namespace
}  // namespace ritas
