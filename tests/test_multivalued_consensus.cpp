// Multi-valued consensus: agreement on arbitrary byte strings, the default
// decision ⊥, and the paper's Byzantine faultload (⊥ in INIT and VECT).
#include "core/multivalued_consensus.h"

#include <gtest/gtest.h>

#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::fast_lan;
using test::run_mvc;

std::vector<Bytes> same(std::uint32_t n, const std::string& v) {
  return std::vector<Bytes>(n, to_bytes(v));
}

TEST(MultiValuedConsensus, UnanimousProposalDecided) {
  Cluster c(fast_lan(4, 1));
  auto cap = run_mvc(c, same(4, "value-A"));
  for (ProcessId p : c.correct_set()) {
    ASSERT_TRUE(cap.got[p].has_value());
    ASSERT_TRUE(cap.got[p]->has_value());
    EXPECT_EQ(to_string(**cap.got[p]), "value-A");
  }
}

TEST(MultiValuedConsensus, DecisionIsProposedValueOrDefault) {
  // With conflicting proposals the protocol may decide one value or ⊥,
  // never an invented value; all correct processes agree.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    test::ClusterOptions o = fast_lan(4, 30 + seed);
    o.lan.jitter_ns = 200'000;
    Cluster c(o);
    auto cap = run_mvc(c, {to_bytes("A"), to_bytes("A"), to_bytes("B"), to_bytes("B")});
    ASSERT_TRUE(cap.all_set(c.correct_set())) << "seed " << seed;
    EXPECT_TRUE(cap.agree(c.correct_set())) << "seed " << seed;
    const auto& d = *cap.got[0];
    if (d.has_value()) {
      const std::string s = to_string(*d);
      EXPECT_TRUE(s == "A" || s == "B") << s;
    }
  }
}

TEST(MultiValuedConsensus, AllDistinctProposalsDecideDefault) {
  // No value can gather n-2f INIT matches, so every correct process echoes
  // ⊥ and the binary consensus settles on 0 -> decision ⊥.
  Cluster c(fast_lan(4, 2));
  auto cap = run_mvc(c, {to_bytes("w"), to_bytes("x"), to_bytes("y"), to_bytes("z")});
  for (ProcessId p : c.correct_set()) {
    ASSERT_TRUE(cap.got[p].has_value());
    EXPECT_FALSE(cap.got[p]->has_value()) << "p" << p << " decided a value";
  }
  EXPECT_GT(c.total_metrics().mvc_decided_default, 0u);
}

TEST(MultiValuedConsensus, PaperByzantineCannotForceDefault) {
  // §4.2: the attacker proposes ⊥ in INIT and VECT; correct processes all
  // propose the same value and must still decide it.
  test::ClusterOptions o = fast_lan(4, 3);
  o.byzantine = {2};
  Cluster c(o);
  auto cap = run_mvc(c, same(4, "payload"));
  for (ProcessId p : c.correct_set()) {
    ASSERT_TRUE(cap.got[p].has_value());
    ASSERT_TRUE(cap.got[p]->has_value()) << "attack forced the default value";
    EXPECT_EQ(to_string(**cap.got[p]), "payload");
  }
}

TEST(MultiValuedConsensus, CrashFaultloadDecides) {
  test::ClusterOptions o = fast_lan(4, 4);
  o.crashed = {1};
  Cluster c(o);
  auto cap = run_mvc(c, same(4, "survives"));
  for (ProcessId p : c.correct_set()) {
    ASSERT_TRUE(cap.got[p].has_value());
    ASSERT_TRUE(cap.got[p]->has_value());
    EXPECT_EQ(to_string(**cap.got[p]), "survives");
  }
}

TEST(MultiValuedConsensus, LargeValues) {
  Cluster c(fast_lan(4, 5));
  const Bytes big(20000, 0x7e);
  auto cap = run_mvc(c, std::vector<Bytes>(4, big));
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  EXPECT_EQ(**cap.got[0], big);
}

TEST(MultiValuedConsensus, EmptyValueIsALegalProposal) {
  Cluster c(fast_lan(4, 6));
  auto cap = run_mvc(c, std::vector<Bytes>(4, Bytes{}));
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  ASSERT_TRUE(cap.got[0]->has_value());
  EXPECT_TRUE((*cap.got[0])->empty());
}

class MvcGroupSize : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MvcGroupSize, UnanimousAcrossGroupSizes) {
  const std::uint32_t n = GetParam();
  Cluster c(fast_lan(n, 50 + n));
  auto cap = run_mvc(c, same(n, "sweep"));
  for (ProcessId p : c.correct_set()) {
    ASSERT_TRUE(cap.got[p].has_value());
    ASSERT_TRUE(cap.got[p]->has_value());
    EXPECT_EQ(to_string(**cap.got[p]), "sweep");
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, MvcGroupSize,
                         ::testing::Values(4u, 5u, 7u, 10u));

TEST(MultiValuedConsensus, ByzantinePlusJitterManySeeds) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    test::ClusterOptions o = fast_lan(4, 100 + seed);
    o.byzantine = {0};
    o.lan.jitter_ns = 250'000;
    Cluster c(o);
    auto cap = run_mvc(c, same(4, "robust"));
    ASSERT_TRUE(cap.all_set(c.correct_set())) << "seed " << seed;
    EXPECT_TRUE(cap.agree(c.correct_set())) << "seed " << seed;
    // With all correct processes unanimous, the attack must not win.
    ASSERT_TRUE(cap.got[1]->has_value()) << "seed " << seed;
    EXPECT_EQ(to_string(**cap.got[1]), "robust");
  }
}

TEST(MultiValuedConsensus, MetricsCountDecisions) {
  Cluster c(fast_lan(4, 7));
  auto cap = run_mvc(c, same(4, "m"));
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  const Metrics m = c.total_metrics();
  EXPECT_EQ(m.mvc_decided_value, 4u);
  EXPECT_EQ(m.mvc_decided_default, 0u);
  // MVC runs exactly one binary consensus per process.
  EXPECT_EQ(m.bc_decided, 4u);
}

}  // namespace
}  // namespace ritas
