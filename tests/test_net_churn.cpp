// Link-churn integration tests: the self-healing channel layer under fire.
//
// The reliable-channel abstraction (paper §2.1) promises no loss between
// correct processes; real TCP links die. These tests kill every pairwise
// link — abortively (RST) and gracefully (half-close) — in the middle of
// an atomic-broadcast burst over real sockets and assert the paper-level
// guarantee survives: every correct node delivers the complete burst in
// the identical total order, replays are never accepted, and the mesh
// heals itself (link_reconnects > 0) without any outside help. A second
// test starts one node late: the partial-mesh start lets the other n-1
// make progress, and the late joiner catches up from the peers'
// retained-frame queues.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/trace.h"
#include "net_helpers.h"
#include "ritas/context.h"

namespace ritas {
namespace {

using test::free_ports;
using test::local_peers;

constexpr std::uint32_t kN = 4;
constexpr int kBurst = 25;  // messages per node; 100 total per run

struct ChurnCluster {
  std::vector<std::unique_ptr<Context>> ctxs;
  // Per-node delivery log, appended by a collector thread per node.
  std::vector<std::vector<std::pair<ProcessId, std::string>>> delivered;
  std::vector<std::mutex> mutexes{kN};
  std::vector<std::thread> collectors;
  std::atomic<bool> stop{false};

  explicit ChurnCluster(const std::vector<net::PeerAddr>& peers,
                        bool transport_batch = true) {
    delivered.resize(kN);
    for (std::uint32_t p = 0; p < kN; ++p) {
      Context::Options o;
      o.n = kN;
      o.self = p;
      o.peers = peers;
      o.master_secret = to_bytes("churn-master");
      o.rng_seed = 7000 + p;
      o.transport_batch = transport_batch;
      ctxs.push_back(std::make_unique<Context>(o));
    }
  }

  void start_all() {
    std::vector<std::thread> starters;
    for (auto& c : ctxs) starters.emplace_back([&c] { c->start(); });
    for (auto& t : starters) t.join();
  }

  void collect(std::uint32_t p) {
    collectors.emplace_back([this, p] {
      while (!stop.load()) {
        auto d = ctxs[p]->ab_recv_for(std::chrono::milliseconds(100));
        if (!d) continue;
        std::lock_guard<std::mutex> lock(mutexes[p]);
        delivered[p].emplace_back(d->origin, to_string(d->payload));
      }
    });
  }

  std::size_t count(std::uint32_t p) {
    std::lock_guard<std::mutex> lock(mutexes[p]);
    return delivered[p].size();
  }

  bool wait_delivered(std::size_t want, int timeout_ms) {
    for (int waited = 0; waited < timeout_ms; waited += 20) {
      bool all = true;
      for (std::uint32_t p = 0; p < kN; ++p) {
        if (ctxs[p] && count(p) < want) all = false;
      }
      if (all) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  ~ChurnCluster() {
    stop.store(true);
    for (auto& t : collectors) {
      if (t.joinable()) t.join();
    }
    for (auto& c : ctxs) {
      if (c) c->stop();
    }
  }
};

/// Dumps every node's transport counters as JSON — uploaded by CI when the
/// churn gate fails, so a red run leaves the link-layer story behind.
void dump_stats_json(ChurnCluster& cluster, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\"nodes\":[");
  for (std::uint32_t p = 0; p < kN; ++p) {
    const auto s = cluster.ctxs[p]->transport_stats();
    std::fprintf(
        f,
        "%s{\"id\":%u,\"frames_sent\":%llu,\"frames_received\":%llu,"
        "\"frames_retransmitted\":%llu,\"mac_failures\":%llu,"
        "\"replay_drops\":%llu,\"session_rejects\":%llu,"
        "\"counter_gaps\":%llu,\"queue_drops\":%llu,"
        "\"link_reconnects\":%llu,\"handshake_failures\":%llu}",
        p == 0 ? "" : ",", p, (unsigned long long)s.frames_sent,
        (unsigned long long)s.frames_received,
        (unsigned long long)s.frames_retransmitted,
        (unsigned long long)s.mac_failures, (unsigned long long)s.replay_drops,
        (unsigned long long)s.session_rejects,
        (unsigned long long)s.counter_gaps, (unsigned long long)s.queue_drops,
        (unsigned long long)s.link_reconnects,
        (unsigned long long)s.handshake_failures);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
}

/// The churn gate: kill every pairwise link at least once — both kill
/// modes — while an AB burst is in flight; the burst must still arrive
/// complete, in one total order, everywhere, with the kills visible in
/// the reconnect counters. Parametrized over the transport send-batching
/// knob: multi-frame sendmsg flushing is a local optimization, so the
/// paper-level guarantee (complete identical total order, zero accepted
/// replays) must hold bit-for-bit with batching on AND off — including
/// across the resync/retransmit path that batching rewrote.
class NetChurnBatch : public ::testing::TestWithParam<bool> {};

TEST_P(NetChurnBatch, EveryLinkKilledMidBurstStillTotallyOrders) {
  const bool batching = GetParam();
  ChurnCluster cluster(local_peers(free_ports(kN)), batching);
  cluster.start_all();
  for (std::uint32_t p = 0; p < kN; ++p) cluster.collect(p);

  // Interleave the burst with kills of all 6 pairwise links, alternating
  // abortive RST teardowns and graceful half-closes. The dialer side (the
  // higher id) owns the connection and the retry machinery, so kills are
  // issued there.
  std::vector<std::pair<ProcessId, ProcessId>> pairs;  // (killer=dialer, peer)
  for (ProcessId hi = 1; hi < kN; ++hi) {
    for (ProcessId lo = 0; lo < hi; ++lo) pairs.emplace_back(hi, lo);
  }
  std::size_t next_kill = 0;
  for (int i = 0; i < kBurst; ++i) {
    for (std::uint32_t p = 0; p < kN; ++p) {
      cluster.ctxs[p]->ab_bcast(
          to_bytes("m" + std::to_string(p) + "-" + std::to_string(i)));
    }
    // Spread the 6 kills across the first half of the burst so every
    // teardown happens with traffic genuinely in flight.
    if (i % 2 == 1 && next_kill < pairs.size()) {
      const auto [hi, lo] = pairs[next_kill];
      const auto mode = next_kill % 2 == 0 ? net::TcpTransport::KillMode::kRst
                                           : net::TcpTransport::KillMode::kHalfClose;
      cluster.ctxs[hi]->transport().kill_link(lo, mode);
      ++next_kill;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(next_kill, pairs.size()) << "burst too short to kill every link";

  const bool complete = cluster.wait_delivered(kN * kBurst, 120'000);
  dump_stats_json(cluster, batching ? "churn_transport_stats.json"
                                    : "churn_transport_stats_unbatched.json");
  ASSERT_TRUE(complete) << "burst did not fully deliver after link churn";

  // Identical complete delivery at every node: same total order, each
  // message exactly once (an accepted replay would show up as a dup).
  {
    std::scoped_lock lock(cluster.mutexes[0], cluster.mutexes[1],
                          cluster.mutexes[2], cluster.mutexes[3]);
    std::set<std::string> uniq(
        [&] {
          std::set<std::string> s;
          for (auto& [o, m] : cluster.delivered[0]) s.insert(m);
          return s;
        }());
    EXPECT_EQ(uniq.size(), static_cast<std::size_t>(kN * kBurst))
        << "duplicate or missing deliveries at node 0";
    for (std::uint32_t p = 1; p < kN; ++p) {
      EXPECT_EQ(cluster.delivered[p], cluster.delivered[0])
          << "total order diverged at node " << p;
    }
  }

  // The churn must be real: every node re-established at least one link,
  // and no node ever accepted a stale-session or stale-counter frame as
  // fresh (those are counted as drops — the delivery check above proves
  // none slipped through).
  std::uint64_t total_reconnects = 0;
  for (std::uint32_t p = 0; p < kN; ++p) {
    const auto s = cluster.ctxs[p]->transport_stats();
    EXPECT_GE(s.link_reconnects, 1u) << "node " << p << " never reconnected";
    total_reconnects += s.link_reconnects;
    // All peers hold the right keys, so nothing may ever look forged.
    // (handshake_failures is NOT asserted zero: a kill landing mid-
    // re-handshake aborts that attempt, which is counted and benign.)
    EXPECT_EQ(s.mac_failures, 0u);
  }
  // 6 killed links, two endpoints each; allow slack for raced teardowns.
  EXPECT_GE(total_reconnects, 6u);

  // Fast-path accounting stays sane through the churn in both modes:
  // every frame reached the kernel through sendmsg_batch (counted), and
  // batch assembly never copied payload bytes (scatter-gather only).
  for (std::uint32_t p = 0; p < kN; ++p) {
    const auto s = cluster.ctxs[p]->transport_stats();
    EXPECT_GT(s.sendmsg_calls, 0u) << "node " << p;
    EXPECT_GE(s.bytes_to_kernel, s.frames_sent * 20u) << "node " << p;
    EXPECT_EQ(s.batch_copy_bytes, 0u) << "node " << p;
    EXPECT_GE(s.frames_per_syscall(), batching ? 1.0 : 0.0) << "node " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(NetChurn, NetChurnBatch, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Batched" : "Unbatched";
                         });

/// Partial-mesh start: n-1 nodes make AB progress on their own; the last
/// node starts late, joins the running mesh, and catches up on everything
/// it missed from the peers' retained-frame queues.
TEST(NetChurn, LateJoinerCatchesUp) {
  ChurnCluster cluster(local_peers(free_ports(kN)));
  // Start only nodes 0..2 (threshold n-f-1 = 2 is reachable among them).
  {
    std::vector<std::thread> starters;
    for (std::uint32_t p = 0; p + 1 < kN; ++p) {
      starters.emplace_back([&cluster, p] { cluster.ctxs[p]->start(); });
    }
    for (auto& t : starters) t.join();
  }
  for (std::uint32_t p = 0; p + 1 < kN; ++p) cluster.collect(p);

  // AB progress with the last node absent: n=4 tolerates f=1 silent node.
  for (int i = 0; i < 8; ++i) {
    cluster.ctxs[0]->ab_bcast(to_bytes("early" + std::to_string(i)));
  }
  ASSERT_TRUE([&] {
    for (int waited = 0; waited < 60'000; waited += 20) {
      bool all = true;
      for (std::uint32_t p = 0; p + 1 < kN; ++p) {
        if (cluster.count(p) < 8) all = false;
      }
      if (all) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }()) << "n-1 nodes failed to make progress without the late joiner";

  // Late joiner arrives: dials everyone, catches up, follows new traffic.
  cluster.ctxs[kN - 1]->start();
  cluster.collect(kN - 1);
  for (int i = 0; i < 4; ++i) {
    cluster.ctxs[1]->ab_bcast(to_bytes("late" + std::to_string(i)));
  }
  ASSERT_TRUE(cluster.wait_delivered(12, 120'000))
      << "late joiner did not catch up";
  {
    std::scoped_lock lock(cluster.mutexes[0], cluster.mutexes[kN - 1]);
    EXPECT_EQ(cluster.delivered[kN - 1], cluster.delivered[0])
        << "late joiner's total order diverged";
  }
  const auto s = cluster.ctxs[kN - 1]->transport_stats();
  EXPECT_EQ(s.mac_failures, 0u);
  EXPECT_EQ(s.session_rejects, 0u);
}

/// Transport-level: a dead link queues frames (bounded, drop-oldest) and
/// the overflow is visible as queue_drops on the sender and counter_gaps
/// on the receiver after the link heals. Link lifecycle events land in
/// the tracer.
TEST(NetChurn, QueueOverflowIsAccountedAcrossReconnect) {
  const auto ports = free_ports(2);
  const auto peers = local_peers(ports);
  std::vector<std::unique_ptr<KeyChain>> keys;
  std::vector<std::unique_ptr<net::TcpTransport>> tp;
  Tracer tracer(1);
  std::atomic<std::size_t> received{0};
  for (std::uint32_t p = 0; p < 2; ++p) {
    keys.push_back(std::make_unique<KeyChain>(
        KeyChain::deal(to_bytes("overflow-master"), 2, p)));
    net::TcpTransport::Options o;
    o.n = 2;
    o.self = p;
    o.peers = peers;
    if (p == 1) {
      o.send_queue_max_bytes = 4 * 1024;  // tiny: force drop-oldest
      o.backoff.base_ms = 200;            // keep the link down long enough
      o.backoff.jitter_pct = 0;
      o.rng_seed = 11;
    }
    tp.push_back(std::make_unique<net::TcpTransport>(o, *keys[p]));
  }
  tp[0]->set_sink([&](ProcessId, Slice) { received.fetch_add(1); });
  tp[1]->set_sink([](ProcessId, Slice) {});
  tp[1]->set_tracer(&tracer);

  std::atomic<bool> stop{false};
  std::vector<std::thread> runners;
  for (std::uint32_t p = 0; p < 2; ++p) {
    runners.emplace_back([&, p] {
      tp[p]->start();
      while (!stop.load()) tp[p]->poll_once(10);
    });
  }
  auto wait_until = [](const std::function<bool()>& cond, int timeout_ms) {
    for (int waited = 0; waited < timeout_ms; waited += 5) {
      if (cond()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return cond();
  };
  ASSERT_TRUE(wait_until([&] { return tp[1]->links_up() == 1; }, 10'000));

  tp[1]->send(0, to_bytes("before the cut"));
  ASSERT_TRUE(wait_until([&] { return received.load() >= 1; }, 5'000));

  // Cut the link, then stuff 1 KiB frames well past the 4 KiB budget while
  // it is down. The oldest never-written frames must be evicted (counted),
  // and after the automatic reconnect the receiver must observe the
  // forward counter jump instead of silently renumbering.
  tp[1]->kill_link(0, net::TcpTransport::KillMode::kRst);
  ASSERT_TRUE(wait_until([&] { return tp[1]->links_up() == 0; }, 5'000));
  const Bytes big(1024, 0x55);
  for (int i = 0; i < 64; ++i) tp[1]->send(0, Bytes(big));
  EXPECT_GE(tp[1]->stats().queue_drops, 1u);

  ASSERT_TRUE(wait_until([&] { return tp[1]->links_up() == 1; }, 10'000))
      << "link did not self-heal";
  ASSERT_TRUE(wait_until([&] { return tp[0]->stats().counter_gaps >= 1; },
                         10'000));
  EXPECT_GE(tp[1]->stats().link_reconnects, 1u);
  // The queue tail (most recent frames) survived the overflow.
  ASSERT_TRUE(wait_until([&] { return received.load() >= 2; }, 10'000));

  stop.store(true);
  for (auto& t : tp) t->wakeup();
  for (auto& t : runners) t.join();
  for (auto& t : tp) t->stop();

  // Lifecycle events: up (initial), down (kill), handshake + up (heal).
  int ups = 0, downs = 0, handshakes = 0;
  for (const TraceEvent& e : tracer.events()) {
    if (e.kind == TraceEventKind::kLinkUp) ++ups;
    if (e.kind == TraceEventKind::kLinkDown) ++downs;
    if (e.kind == TraceEventKind::kLinkHandshake) ++handshakes;
  }
  EXPECT_GE(ups, 2);
  EXPECT_GE(downs, 1);
  EXPECT_GE(handshakes, 2);
}

}  // namespace
}  // namespace ritas
