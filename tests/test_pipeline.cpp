// Multi-core execution pipeline: SPSC handoff queue, ReactorPool
// ownership/ordering, the determinism battery (per-group traces
// bit-identical across T for a fixed frame arrival order), crypto-worker
// MAC ordering on the wire, and the ShardedNode end-to-end path.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/spsc.h"
#include "common/trace.h"
#include "core/group_mux.h"
#include "core/reactor.h"
#include "core/stack.h"
#include "core/variants.h"
#include "net_helpers.h"
#include "ritas/sharded_node.h"

namespace ritas {
namespace {

using test::free_ports;
using test::local_peers;
using test::RawPeer;

/// Capturing loopback transport (clock-less: now_ns() stays 0, so trace
/// timestamps are identically zero in the determinism battery).
struct SentFrame {
  ProcessId to;
  Slice frame;
};
class FakeTransport final : public Transport {
 public:
  void send(ProcessId to, Slice frame) override {
    sent.push_back(SentFrame{to, std::move(frame)});
  }
  std::vector<SentFrame> sent;
};

bool wait_until(const std::function<bool()>& cond, int timeout_ms = 5000) {
  for (int waited = 0; waited < timeout_ms; waited += 5) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

// --- SPSC handoff queue -----------------------------------------------------

TEST(SpscQueue, FifoAndWraparound) {
  SpscQueue<int> q(4);
  for (int round = 0; round < 10; ++round) {  // wrap several times
    for (int i = 0; i < 3; ++i) EXPECT_TRUE(q.try_push(round * 10 + i));
    int v = 0;
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(q.try_pop(v));
      EXPECT_EQ(v, round * 10 + i);
    }
    EXPECT_FALSE(q.try_pop(v));
  }
}

TEST(SpscQueue, RejectsWhenFull) {
  SpscQueue<int> q(4);  // capacity rounds to 4
  int pushed = 0;
  while (q.try_push(int(pushed))) ++pushed;
  EXPECT_EQ(pushed, 4);
  int v = 0;
  ASSERT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(q.try_push(99));  // slot freed
}

TEST(SpscQueue, CrossThreadPreservesOrder) {
  constexpr int kN = 100'000;
  SpscQueue<int> q(256);
  std::thread producer([&] {
    for (int i = 0; i < kN; ++i) {
      while (!q.try_push(int(i))) std::this_thread::yield();
    }
  });
  int expect = 0;
  while (expect < kN) {
    int v = 0;
    if (q.try_pop(v)) {
      ASSERT_EQ(v, expect);
      ++expect;
    }
  }
  producer.join();
}

// --- ReactorPool ------------------------------------------------------------

TEST(ReactorPool, InlineModeExecutesOnCaller) {
  ReactorPool pool;  // threads = 0
  EXPECT_TRUE(pool.inline_mode());
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.post(7, [&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
  EXPECT_EQ(pool.stats().handoff_enqueued, 0u);
}

TEST(ReactorPool, TasksRunFifoOnTheOwningReactor) {
  ReactorPool::Options o;
  o.threads = 2;
  ReactorPool pool(o);
  pool.pin(0, 0);
  pool.pin(1, 1);
  pool.start();
  std::mutex m;
  std::map<GroupId, std::vector<int>> order;
  std::map<GroupId, std::set<std::thread::id>> tids;
  constexpr int kPer = 200;
  for (int i = 0; i < kPer; ++i) {
    for (GroupId g = 0; g < 2; ++g) {
      pool.post(g, [&, g, i] {
        std::lock_guard<std::mutex> lock(m);
        order[g].push_back(i);
        tids[g].insert(std::this_thread::get_id());
      });
    }
  }
  ASSERT_TRUE(wait_until([&] {
    std::lock_guard<std::mutex> lock(m);
    return order[0].size() == kPer && order[1].size() == kPer;
  }));
  pool.stop();
  for (GroupId g = 0; g < 2; ++g) {
    // Per-group FIFO on exactly one thread — the single-threaded reactor
    // contract the protocol layer relies on.
    EXPECT_EQ(tids[g].size(), 1u) << "group " << g;
    for (int i = 0; i < kPer; ++i) EXPECT_EQ(order[g][i], i);
  }
  EXPECT_NE(*tids[0].begin(), *tids[1].begin());
  EXPECT_EQ(pool.stats().tasks_run, 2u * kPer);
}

TEST(ReactorPool, PinningOverridesModuloDefault) {
  ReactorPool::Options o;
  o.threads = 4;
  ReactorPool pool(o);
  EXPECT_EQ(pool.reactor_of(0), 0u);
  EXPECT_EQ(pool.reactor_of(5), 1u);  // 5 % 4
  pool.pin(5, 3);
  EXPECT_EQ(pool.reactor_of(5), 3u);
}

TEST(ReactorPool, FullRingCountsDropsInNonBlockingMode) {
  ReactorPool::Options o;
  o.threads = 1;
  o.queue_capacity = 8;
  o.block_on_full = false;
  ReactorPool pool(o);
  // Stall the reactor so the ring fills behind it.
  std::mutex gate;
  gate.lock();
  pool.start();
  pool.post(0, [&] { std::lock_guard<std::mutex> hold(gate); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // A stack whose frames are garbage: the reactor counts them as parse
  // drops, which is all this test needs.
  FakeTransport ft;
  KeyChain keys = KeyChain::deal(to_bytes("k"), 4, 0);
  StackConfig cfg;
  cfg.n = 4;
  cfg.self = 0;
  ProtocolStack stack(cfg, ft, keys, 1);
  std::size_t accepted = 0;
  for (int i = 0; i < 64; ++i) {
    if (pool.route(0, stack, 1, Slice(to_bytes("junk")))) ++accepted;
  }
  const auto stalled = pool.stats();
  EXPECT_GT(stalled.handoff_dropped, 0u);
  EXPECT_EQ(stalled.handoff_enqueued, accepted);
  EXPECT_LE(accepted, 8u);
  gate.unlock();
  pool.stop();
}

// --- determinism battery ----------------------------------------------------
// A fixed per-group frame arrival order must produce bit-identical
// per-group traces for every T ∈ {0, 1, 2, 4} and any pinning: the pool
// moves groups across cores but never reorders within a group. The frame
// script is generated once by real Bracha RB exchanges among processes
// 1..3 (captured off FakeTransports), then replayed through GroupMux →
// ReactorPool into victim stacks (process 0). FakeTransport::now_ns() is
// 0, so trace timestamps cannot differ either.

struct GroupScript {
  std::vector<std::pair<ProcessId, Slice>> frames;  // addressed to process 0
};

constexpr std::uint32_t kGroups = 4;
constexpr std::uint64_t kRbPerGroup = 6;
const Bytes kMaster = to_bytes("pipeline-det");

InstanceId rb_root(std::uint64_t k) {
  return InstanceId::root(ProtocolType::kReliableBroadcast, 0x100 + k);
}

StackConfig group_config(std::uint32_t self, GroupId g) {
  StackConfig cfg;
  cfg.n = 4;
  cfg.self = self;
  cfg.group = g;
  return cfg;
}

/// Runs the full RB exchange for group `g` among generator processes 1..3
/// (process 0 silent), capturing every frame addressed to 0 in a
/// deterministic order.
GroupScript make_group_script(GroupId g) {
  std::array<FakeTransport, 4> fts;
  std::array<std::unique_ptr<KeyChain>, 4> keys;
  std::array<std::unique_ptr<ProtocolStack>, 4> stacks;
  std::vector<std::unique_ptr<RbAlgorithm>> roots;
  for (std::uint32_t s = 1; s <= 3; ++s) {
    keys[s] = std::make_unique<KeyChain>(KeyChain::deal(kMaster, 4, s));
    stacks[s] = std::make_unique<ProtocolStack>(group_config(s, g), fts[s],
                                                *keys[s], 0x9000 + g * 8 + s);
  }
  GroupScript script;
  const auto exchange = [&] {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::uint32_t s = 1; s <= 3; ++s) {
        auto sent = std::move(fts[s].sent);
        fts[s].sent.clear();
        for (auto& sf : sent) {
          progress = true;
          if (sf.to == 0) {
            script.frames.emplace_back(s, std::move(sf.frame));
          } else if (sf.to >= 1 && sf.to <= 3) {
            stacks[sf.to]->on_packet(s, std::move(sf.frame));
          }
        }
      }
    }
  };
  for (std::uint64_t k = 0; k < kRbPerGroup; ++k) {
    for (std::uint32_t s = 1; s <= 3; ++s) {
      roots.push_back(make_rb(*stacks[s], nullptr, rb_root(k), /*origin=*/1,
                              Attribution::kPayload, [](Slice) {}));
    }
    static_cast<RbAlgorithm&>(*roots[roots.size() - 3])
        .bcast(Slice(to_bytes("payload-" + std::to_string(g) + "-" +
                              std::to_string(k))));
    exchange();
  }
  return script;
}

/// Replays the scripts into fresh victim stacks (process 0, one per
/// group) through GroupMux with a ReactorPool of T threads; returns each
/// group's encoded trace plus the delivery count.
std::pair<std::vector<Bytes>, std::uint64_t> replay(
    const std::vector<GroupScript>& scripts, std::uint32_t threads) {
  std::array<FakeTransport, kGroups> fts;  // one per stack: reactor-owned
  KeyChain keys = KeyChain::deal(kMaster, 4, 0);
  std::vector<std::unique_ptr<ProtocolStack>> stacks;
  std::vector<std::unique_ptr<Tracer>> tracers;
  std::vector<std::unique_ptr<RbAlgorithm>> roots;
  std::atomic<std::uint64_t> delivered{0};
  GroupMux mux;
  for (GroupId g = 0; g < kGroups; ++g) {
    stacks.push_back(std::make_unique<ProtocolStack>(group_config(0, g), fts[g],
                                                     keys, 0xa000 + g));
    tracers.push_back(std::make_unique<Tracer>(0));
    stacks[g]->set_tracer(tracers[g].get());
    mux.attach(g, *stacks[g]);
    for (std::uint64_t k = 0; k < kRbPerGroup; ++k) {
      roots.push_back(make_rb(*stacks[g], nullptr, rb_root(k), /*origin=*/1,
                              Attribution::kPayload,
                              [&delivered](Slice) { ++delivered; }));
    }
  }
  ReactorPool::Options po;
  po.threads = threads;
  ReactorPool pool(po);
  if (threads > 0) {
    mux.bind_reactors(&pool);
    pool.start();
  }
  // Interleave groups round-robin: per-group order is what matters and is
  // identical for every T.
  std::size_t longest = 0;
  for (const auto& s : scripts) longest = std::max(longest, s.frames.size());
  for (std::size_t i = 0; i < longest; ++i) {
    for (GroupId g = 0; g < kGroups; ++g) {
      if (i < scripts[g].frames.size()) {
        const auto& [from, frame] = scripts[g].frames[i];
        mux.on_packet(from, frame);
      }
    }
  }
  if (threads > 0) pool.stop();  // drains every ring before joining
  std::vector<Bytes> traces;
  for (GroupId g = 0; g < kGroups; ++g) traces.push_back(tracers[g]->encode());
  if (threads > 0) {
    const auto st = pool.stats();
    EXPECT_EQ(st.handoff_enqueued,
              static_cast<std::uint64_t>(kGroups) * scripts[0].frames.size());
    EXPECT_EQ(st.handoff_dropped, 0u);
  }
  return {std::move(traces), delivered.load()};
}

TEST(PipelineDeterminism, PerGroupTracesBitIdenticalAcrossThreadCounts) {
  std::vector<GroupScript> scripts;
  for (GroupId g = 0; g < kGroups; ++g) scripts.push_back(make_group_script(g));
  for (const auto& s : scripts) ASSERT_FALSE(s.frames.empty());

  const auto [inline_traces, inline_delivered] = replay(scripts, 0);
  ASSERT_EQ(inline_delivered, kGroups * kRbPerGroup)
      << "script must drive every RB instance to delivery";
  for (const Bytes& t : inline_traces) ASSERT_FALSE(t.empty());
  for (std::uint32_t threads : {1u, 2u, 4u}) {
    const auto [traces, got] = replay(scripts, threads);
    EXPECT_EQ(got, inline_delivered) << "T=" << threads;
    for (GroupId g = 0; g < kGroups; ++g) {
      EXPECT_EQ(traces[g], inline_traces[g])
          << "group " << g << " trace diverged at T=" << threads;
    }
  }
}

TEST(PipelineDeterminism, ReplayIsRepeatableAtFixedThreadCount) {
  std::vector<GroupScript> scripts;
  for (GroupId g = 0; g < kGroups; ++g) scripts.push_back(make_group_script(g));
  const auto a = replay(scripts, 2);
  const auto b = replay(scripts, 2);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// --- crypto workers on the wire --------------------------------------------

struct CryptoVictim {
  std::unique_ptr<KeyChain> keys;
  std::unique_ptr<net::TcpTransport> transport;
  std::thread thread;
  std::mutex mutex;
  std::vector<Bytes> received;
  std::atomic<bool> stop{false};
  std::uint16_t port;
  Bytes peer_key;

  explicit CryptoVictim(std::uint32_t crypto_threads) {
    const auto ports = free_ports(2);
    port = ports[0];
    keys = std::make_unique<KeyChain>(
        KeyChain::deal(to_bytes("victim-master"), 2, 0));
    net::TcpTransport::Options o;
    o.n = 2;
    o.self = 0;
    o.peers = local_peers(ports);
    o.authenticate = true;
    o.crypto_threads = crypto_threads;
    transport = std::make_unique<net::TcpTransport>(o, *keys);
    transport->set_sink([this](ProcessId, Slice frame) {
      std::lock_guard<std::mutex> lock(mutex);
      received.push_back(frame.to_bytes());
    });
    const KeyChain peer_chain = KeyChain::deal(to_bytes("victim-master"), 2, 1);
    peer_key.assign(peer_chain.key(0).begin(), peer_chain.key(0).end());
    thread = std::thread([this] {
      transport->start();
      while (!stop.load()) transport->poll_once(20);
    });
  }

  ~CryptoVictim() {
    stop.store(true);
    transport->wakeup();
    thread.join();
    transport->stop();
  }

  std::size_t count() {
    std::lock_guard<std::mutex> lock(mutex);
    return received.size();
  }
};

TEST(CryptoPipeline, MacFailureNeverReordersVerifiedFrames) {
  CryptoVictim v(/*crypto_threads=*/2);
  RawPeer peer(v.port, 1, 0, v.peer_key);
  peer.connect();
  ASSERT_TRUE(peer.handshake(0x7777));

  // One TCP burst: good c0, tampered c1, good c2..c9. The workers verify
  // out of order, but harvest is strictly arrival-order: the bad frame is
  // a counted drop in place and every later verified frame still delivers
  // after every earlier one.
  Bytes burst = peer.make_frame(peer.sid(), 0, to_bytes("g0"));
  Bytes forged = peer.make_frame(peer.sid(), 1, to_bytes("evil"));
  forged.back() ^= 0x01;
  append(burst, forged);
  for (std::uint64_t c = 2; c < 10; ++c) {
    append(burst, peer.make_frame(peer.sid(), c, to_bytes("g" + std::to_string(c))));
  }
  peer.send_raw(burst);

  ASSERT_TRUE(wait_until([&] { return v.count() >= 9; }));
  const auto stats = v.transport->stats();
  EXPECT_EQ(stats.mac_failures, 1u);
  EXPECT_GE(stats.crypto_offloaded, 10u);
  std::lock_guard<std::mutex> lock(v.mutex);
  ASSERT_EQ(v.received.size(), 9u);
  EXPECT_EQ(to_string(v.received[0]), "g0");
  for (std::uint64_t c = 2; c < 10; ++c) {
    EXPECT_EQ(to_string(v.received[c - 1]), "g" + std::to_string(c));
  }
}

TEST(CryptoPipeline, StaleCounterFloodStillDroppedWithWorkers) {
  CryptoVictim v(/*crypto_threads=*/2);
  RawPeer peer(v.port, 1, 0, v.peer_key);
  peer.connect();
  ASSERT_TRUE(peer.handshake(0x8888));
  for (std::uint64_t c = 0; c < 3; ++c) peer.send_frame(c, to_bytes("frame"));
  ASSERT_TRUE(wait_until([&] { return v.count() >= 3; }));
  // Valid MACs, stale counters: verified by workers, then replay-dropped
  // at harvest — never delivered twice.
  for (int i = 0; i < 20; ++i) peer.send_frame(0, to_bytes("flood"));
  ASSERT_TRUE(wait_until([&] { return v.transport->stats().replay_drops >= 20; }));
  EXPECT_EQ(v.count(), 3u);
  peer.send_frame(3, to_bytes("after"));
  ASSERT_TRUE(wait_until([&] { return v.count() >= 4; }));
}

// --- ShardedNode end-to-end -------------------------------------------------

TEST(ShardedNode, PipelinedClusterReachesAgreement) {
  constexpr std::uint32_t kN = 4;
  constexpr std::uint32_t kShards = 2;
  const auto ports = free_ports(kN);
  const auto peers = local_peers(ports);
  std::vector<std::unique_ptr<ShardedNode>> nodes(kN);
  std::vector<std::thread> starters;
  for (std::uint32_t p = 0; p < kN; ++p) {
    ShardedNode::Options o;
    o.n = kN;
    o.self = p;
    o.peers = peers;
    o.master_secret = to_bytes("sharded-node");
    o.groups = kShards;
    o.reactor_threads = 2;
    o.crypto_threads = 1;
    o.rng_seed = 42;
    nodes[p] = std::make_unique<ShardedNode>(std::move(o));
    // start() blocks until the partial mesh is up; bring all nodes up in
    // parallel like a real deployment.
    starters.emplace_back([&nodes, p] { nodes[p]->start(); });
  }
  for (auto& t : starters) t.join();

  constexpr std::uint64_t kOps = 12;
  std::set<smr::ShardId> shards_used;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const std::string op = "put k" + std::to_string(i) + " v" + std::to_string(i);
    shards_used.insert(nodes[i % kN]->submit(/*client=*/7, /*seq=*/i,
                                             to_bytes(op)));
  }
  EXPECT_GT(shards_used.size(), 1u) << "keys should spread across shards";
  for (std::uint32_t p = 0; p < kN; ++p) {
    EXPECT_TRUE(nodes[p]->wait_applied_at_least(kOps, std::chrono::seconds(60)))
        << "node " << p << " applied " << nodes[p]->applied_total();
  }
  // Every replica of every shard converged on the same state.
  for (smr::ShardId s = 0; s < kShards; ++s) {
    const Bytes snap = nodes[0]->service().snapshot(s);
    for (std::uint32_t p = 1; p < kN; ++p) {
      EXPECT_EQ(nodes[p]->service().snapshot(s), snap) << "shard " << s;
    }
  }
  // The pipeline actually ran: frames crossed the handoff rings and MAC
  // work hit the crypto workers.
  for (std::uint32_t p = 0; p < kN; ++p) {
    const auto ps = nodes[p]->pipeline_stats();
    EXPECT_GT(ps.handoff_enqueued, 0u) << "node " << p;
    EXPECT_EQ(ps.handoff_dropped, 0u) << "node " << p;
    const auto ts = nodes[p]->transport_stats();
    EXPECT_GT(ts.crypto_offloaded, 0u) << "node " << p;
    EXPECT_GT(ts.crypto_mac_offloaded, 0u) << "node " << p;
    EXPECT_EQ(nodes[p]->service().misrouted_dropped(), 0u);
  }
  for (auto& n : nodes) n->stop();
}

TEST(ShardedNode, SingleThreadPathMatchesDefaults) {
  // reactor_threads = 0 must behave exactly like the pre-pipeline wiring:
  // no pool, no handoff counters, agreement still reached.
  constexpr std::uint32_t kN = 4;
  const auto ports = free_ports(kN);
  const auto peers = local_peers(ports);
  std::vector<std::unique_ptr<ShardedNode>> nodes(kN);
  std::vector<std::thread> starters;
  for (std::uint32_t p = 0; p < kN; ++p) {
    ShardedNode::Options o;
    o.n = kN;
    o.self = p;
    o.peers = peers;
    o.master_secret = to_bytes("sharded-node-inline");
    o.groups = 2;
    o.rng_seed = 43;
    nodes[p] = std::make_unique<ShardedNode>(std::move(o));
    starters.emplace_back([&nodes, p] { nodes[p]->start(); });
  }
  for (auto& t : starters) t.join();
  for (std::uint64_t i = 0; i < 4; ++i) {
    nodes[0]->submit(1, i, to_bytes("put x" + std::to_string(i) + " y"));
  }
  for (std::uint32_t p = 0; p < kN; ++p) {
    EXPECT_TRUE(nodes[p]->wait_applied_at_least(4, std::chrono::seconds(60)));
    EXPECT_EQ(nodes[p]->pipeline_stats().handoff_enqueued, 0u);
    EXPECT_EQ(nodes[p]->transport_stats().crypto_offloaded, 0u);
  }
  for (auto& n : nodes) n->stop();
}

TEST(ShardedNode, RejectsBadPipelineOptions) {
  ShardedNode::Options o;
  o.n = 4;
  o.self = 0;
  o.peers = local_peers(free_ports(4));
  o.master_secret = to_bytes("x");
  o.groups = 2;
  o.reactor_threads = 65;
  EXPECT_THROW(ShardedNode{o}, std::invalid_argument);
  o.reactor_threads = 2;
  o.pinning = {0, 2};  // reactor index out of range
  EXPECT_THROW(ShardedNode{o}, std::invalid_argument);
  o.pinning = {0};  // wrong size
  EXPECT_THROW(ShardedNode{o}, std::invalid_argument);
}

}  // namespace
}  // namespace ritas
