// Property sweeps: the protocol-stack invariants, checked over a matrix of
// group size x faultload x seed with randomized delivery schedules. These
// are the properties the paper's §2 definitions promise:
//
//   BC : agreement, validity (unanimous input decides that input),
//        termination.
//   MVC: agreement, decision is a proposed value or ⊥, termination.
//   VC : agreement on one vector, entry i is p_i's proposal or ⊥, at least
//        f+1 entries from correct processes.
//   AB : agreement (prefix-identical delivery sequences), validity (every
//        correct broadcast eventually delivered), integrity (no
//        duplicates, no inventions).
#include <gtest/gtest.h>

#include "sim/oracles.h"
#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::fast_lan;
using test::kDeadline;

enum class Fault { kNone, kCrash, kByzantine, kCrashAndByzantine };

struct Params {
  std::uint32_t n;
  Fault fault;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  const char* f = "";
  switch (info.param.fault) {
    case Fault::kNone: f = "ok"; break;
    case Fault::kCrash: f = "crash"; break;
    case Fault::kByzantine: f = "byz"; break;
    case Fault::kCrashAndByzantine: f = "crashbyz"; break;
  }
  return "n" + std::to_string(info.param.n) + "_" + f + "_s" +
         std::to_string(info.param.seed);
}

test::ClusterOptions options_for(const Params& p) {
  test::ClusterOptions o = fast_lan(p.n, 5000 + p.seed * 131 + p.n);
  o.lan.jitter_ns = 400'000;
  const std::uint32_t f = max_faults(p.n);
  switch (p.fault) {
    case Fault::kNone:
      break;
    case Fault::kCrash:
      for (std::uint32_t i = 0; i < f; ++i) o.crashed.push_back(p.n - 1 - i);
      break;
    case Fault::kByzantine:
      for (std::uint32_t i = 0; i < f; ++i) o.byzantine.push_back(p.n - 1 - i);
      break;
    case Fault::kCrashAndByzantine:
      // Split the fault budget (needs f >= 2).
      o.crashed.push_back(p.n - 1);
      for (std::uint32_t i = 1; i < f; ++i) o.byzantine.push_back(p.n - 1 - i);
      break;
  }
  return o;
}

class StackProperties : public ::testing::TestWithParam<Params> {};

TEST_P(StackProperties, BinaryConsensus) {
  Cluster c(options_for(GetParam()));
  std::vector<bool> proposals(c.n());
  // Seed-dependent proposal pattern, including splits.
  for (ProcessId p = 0; p < c.n(); ++p) {
    proposals[p] = ((GetParam().seed + p) % 3) != 0;
  }
  auto cap = test::run_binary_consensus(c, proposals);
  sim::oracle::Report rep;
  sim::oracle::check_bc(rep, c.correct_set(), proposals, cap.got);
  EXPECT_TRUE(rep.ok()) << rep.text();
}

TEST_P(StackProperties, MultiValuedConsensus) {
  Cluster c(options_for(GetParam()));
  std::vector<Bytes> proposals(c.n());
  // Two camps of proposals.
  for (ProcessId p = 0; p < c.n(); ++p) {
    proposals[p] = to_bytes(((GetParam().seed + p) % 2) ? "camp-A" : "camp-B");
  }
  auto cap = test::run_mvc(c, proposals);
  sim::oracle::Report rep;
  sim::oracle::check_mvc(rep, c.correct_set(), proposals, cap.got);
  EXPECT_TRUE(rep.ok()) << rep.text();
}

TEST_P(StackProperties, VectorConsensus) {
  Cluster c(options_for(GetParam()));
  std::vector<Bytes> proposals(c.n());
  for (ProcessId p = 0; p < c.n(); ++p) {
    proposals[p] = to_bytes("vc-" + std::to_string(p));
  }
  auto cap = test::run_vc(c, proposals);
  sim::oracle::Report rep;
  sim::oracle::check_vc(rep, c.correct_set(), proposals, cap.got,
                        max_faults(c.n()));
  EXPECT_TRUE(rep.ok()) << rep.text();
}

TEST_P(StackProperties, AtomicBroadcast) {
  Cluster c(options_for(GetParam()));
  std::vector<AtomicBroadcast*> ab(c.n(), nullptr);
  std::vector<sim::oracle::AbLog> log(c.n());
  sim::oracle::AbSent sent;
  const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  for (ProcessId p : c.live()) {
    ab[p] = &c.create_root<AtomicBroadcast>(
        p, id, [&log, p](ProcessId origin, std::uint64_t rbid, Slice payload) {
          log[p].push_back({origin, rbid, payload.to_bytes()});
        });
  }
  const std::uint32_t kPer = 3;
  for (std::uint32_t i = 0; i < kPer; ++i) {
    for (ProcessId p : c.live()) {
      c.call(p, [&, p, i] {
        Bytes b = to_bytes("m" + std::to_string(p) + "." + std::to_string(i));
        const std::uint64_t rbid = ab[p]->bcast(Bytes(b));
        if (c.correct(p)) sent[{p, rbid}] = std::move(b);
      });
    }
  }
  // Validity: everything the CORRECT processes broadcast must arrive at
  // every correct process (Byzantine senders' messages may or may not).
  const std::size_t must = kPer * c.correct_set().size();
  ASSERT_TRUE(c.run_until(
      [&] {
        for (ProcessId p : c.correct_set()) {
          std::size_t from_correct = 0;
          for (const auto& e : log[p]) {
            if (c.correct(e.origin)) ++from_correct;
          }
          if (from_correct < must) return false;
        }
        return true;
      },
      kDeadline))
      << "validity/termination";
  c.run_all();

  sim::oracle::Report rep;
  sim::oracle::check_ab(rep, c.correct_set(), log, sent);
  EXPECT_TRUE(rep.ok()) << rep.text();
}

std::vector<Params> make_matrix() {
  std::vector<Params> out;
  for (std::uint32_t n : {4u, 7u}) {
    for (Fault f : {Fault::kNone, Fault::kCrash, Fault::kByzantine}) {
      for (std::uint64_t seed = 0; seed < 3; ++seed) {
        out.push_back({n, f, seed});
      }
    }
  }
  // Mixed faults need f >= 2, i.e. n >= 7.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    out.push_back({7, Fault::kCrashAndByzantine, seed});
  }
  // One bigger group as a smoke-scale point.
  out.push_back({10, Fault::kByzantine, 0});
  out.push_back({10, Fault::kCrash, 0});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Matrix, StackProperties, ::testing::ValuesIn(make_matrix()),
                         param_name);

}  // namespace
}  // namespace ritas
