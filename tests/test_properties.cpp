// Property sweeps: the protocol-stack invariants, checked over a matrix of
// group size x faultload x seed with randomized delivery schedules. These
// are the properties the paper's §2 definitions promise:
//
//   BC : agreement, validity (unanimous input decides that input),
//        termination.
//   MVC: agreement, decision is a proposed value or ⊥, termination.
//   VC : agreement on one vector, entry i is p_i's proposal or ⊥, at least
//        f+1 entries from correct processes.
//   AB : agreement (prefix-identical delivery sequences), validity (every
//        correct broadcast eventually delivered), integrity (no
//        duplicates, no inventions).
#include <gtest/gtest.h>

#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::fast_lan;
using test::kDeadline;

enum class Fault { kNone, kCrash, kByzantine, kCrashAndByzantine };

struct Params {
  std::uint32_t n;
  Fault fault;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  const char* f = "";
  switch (info.param.fault) {
    case Fault::kNone: f = "ok"; break;
    case Fault::kCrash: f = "crash"; break;
    case Fault::kByzantine: f = "byz"; break;
    case Fault::kCrashAndByzantine: f = "crashbyz"; break;
  }
  return "n" + std::to_string(info.param.n) + "_" + f + "_s" +
         std::to_string(info.param.seed);
}

test::ClusterOptions options_for(const Params& p) {
  test::ClusterOptions o = fast_lan(p.n, 5000 + p.seed * 131 + p.n);
  o.lan.jitter_ns = 400'000;
  const std::uint32_t f = max_faults(p.n);
  switch (p.fault) {
    case Fault::kNone:
      break;
    case Fault::kCrash:
      for (std::uint32_t i = 0; i < f; ++i) o.crashed.push_back(p.n - 1 - i);
      break;
    case Fault::kByzantine:
      for (std::uint32_t i = 0; i < f; ++i) o.byzantine.push_back(p.n - 1 - i);
      break;
    case Fault::kCrashAndByzantine:
      // Split the fault budget (needs f >= 2).
      o.crashed.push_back(p.n - 1);
      for (std::uint32_t i = 1; i < f; ++i) o.byzantine.push_back(p.n - 1 - i);
      break;
  }
  return o;
}

class StackProperties : public ::testing::TestWithParam<Params> {};

TEST_P(StackProperties, BinaryConsensus) {
  Cluster c(options_for(GetParam()));
  std::vector<bool> proposals(c.n());
  // Seed-dependent proposal pattern, including splits.
  for (ProcessId p = 0; p < c.n(); ++p) {
    proposals[p] = ((GetParam().seed + p) % 3) != 0;
  }
  auto cap = test::run_binary_consensus(c, proposals);
  ASSERT_TRUE(cap.all_set(c.correct_set())) << "termination";
  EXPECT_TRUE(cap.agree(c.correct_set())) << "agreement";
  // Validity when the correct processes happen to be unanimous.
  bool all_same = true;
  for (ProcessId p : c.correct_set()) {
    all_same = all_same && proposals[p] == proposals[c.correct_set().front()];
  }
  if (all_same) {
    EXPECT_EQ(*cap.got[c.correct_set().front()],
              proposals[c.correct_set().front()])
        << "validity";
  }
}

TEST_P(StackProperties, MultiValuedConsensus) {
  Cluster c(options_for(GetParam()));
  std::vector<Bytes> proposals(c.n());
  // Two camps of proposals.
  for (ProcessId p = 0; p < c.n(); ++p) {
    proposals[p] = to_bytes(((GetParam().seed + p) % 2) ? "camp-A" : "camp-B");
  }
  auto cap = test::run_mvc(c, proposals);
  ASSERT_TRUE(cap.all_set(c.correct_set())) << "termination";
  EXPECT_TRUE(cap.agree(c.correct_set())) << "agreement";
  const auto& d = *cap.got[c.correct_set().front()];
  if (d.has_value()) {
    const std::string s = to_string(*d);
    EXPECT_TRUE(s == "camp-A" || s == "camp-B") << "decided invented value " << s;
  }
}

TEST_P(StackProperties, VectorConsensus) {
  Cluster c(options_for(GetParam()));
  std::vector<Bytes> proposals(c.n());
  for (ProcessId p = 0; p < c.n(); ++p) {
    proposals[p] = to_bytes("vc-" + std::to_string(p));
  }
  auto cap = test::run_vc(c, proposals);
  ASSERT_TRUE(cap.all_set(c.correct_set())) << "termination";
  EXPECT_TRUE(cap.agree(c.correct_set())) << "agreement";
  const auto& v = *cap.got[c.correct_set().front()];
  ASSERT_EQ(v.size(), c.n());
  std::uint32_t correct_entries = 0;
  for (ProcessId p = 0; p < c.n(); ++p) {
    if (!v[p].has_value()) continue;
    if (c.correct(p)) {
      EXPECT_EQ(*v[p], proposals[p]) << "entry " << p << " is not its proposal";
      ++correct_entries;
    }
  }
  EXPECT_GE(correct_entries, max_faults(c.n()) + 1 -
                                 static_cast<std::uint32_t>(
                                     c.n() - c.correct_set().size()) * 0)
      << "f+1 correct entries";
}

TEST_P(StackProperties, AtomicBroadcast) {
  Cluster c(options_for(GetParam()));
  std::vector<AtomicBroadcast*> ab(c.n(), nullptr);
  std::vector<std::vector<std::tuple<ProcessId, std::uint64_t, std::string>>> log(c.n());
  const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  for (ProcessId p : c.live()) {
    ab[p] = &c.create_root<AtomicBroadcast>(
        p, id, [&log, p](ProcessId origin, std::uint64_t rbid, Slice payload) {
          log[p].emplace_back(origin, rbid, to_string(payload));
        });
  }
  const std::uint32_t kPer = 3;
  for (std::uint32_t i = 0; i < kPer; ++i) {
    for (ProcessId p : c.live()) {
      c.call(p, [&, p, i] {
        ab[p]->bcast(to_bytes("m" + std::to_string(p) + "." + std::to_string(i)));
      });
    }
  }
  // Validity: everything the CORRECT processes broadcast must arrive at
  // every correct process (Byzantine senders' messages may or may not).
  const std::size_t must = kPer * c.correct_set().size();
  ASSERT_TRUE(c.run_until(
      [&] {
        for (ProcessId p : c.correct_set()) {
          std::size_t from_correct = 0;
          for (const auto& [o, r, s] : log[p]) {
            if (c.correct(o)) ++from_correct;
          }
          if (from_correct < must) return false;
        }
        return true;
      },
      kDeadline))
      << "validity/termination";
  c.run_all();

  const auto& ref = log[c.correct_set().front()];
  for (ProcessId p : c.correct_set()) {
    // Agreement: prefix-identical orders.
    const std::size_t k = std::min(ref.size(), log[p].size());
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_EQ(log[p][i], ref[i]) << "order diverged at " << i;
    }
    // Integrity: no duplicates; payload matches what the origin sent.
    std::set<std::pair<ProcessId, std::uint64_t>> seen;
    for (const auto& [o, r, s] : log[p]) {
      EXPECT_TRUE(seen.emplace(o, r).second) << "duplicate delivery";
      if (c.correct(o)) {
        EXPECT_EQ(s, "m" + std::to_string(o) + "." + std::to_string(r))
            << "payload forgery";
      }
    }
  }
}

std::vector<Params> make_matrix() {
  std::vector<Params> out;
  for (std::uint32_t n : {4u, 7u}) {
    for (Fault f : {Fault::kNone, Fault::kCrash, Fault::kByzantine}) {
      for (std::uint64_t seed = 0; seed < 3; ++seed) {
        out.push_back({n, f, seed});
      }
    }
  }
  // Mixed faults need f >= 2, i.e. n >= 7.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    out.push_back({7, Fault::kCrashAndByzantine, seed});
  }
  // One bigger group as a smoke-scale point.
  out.push_back({10, Fault::kByzantine, 0});
  out.push_back({10, Fault::kCrash, 0});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Matrix, StackProperties, ::testing::ValuesIn(make_matrix()),
                         param_name);

}  // namespace
}  // namespace ritas
