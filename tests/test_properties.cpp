// Property sweeps: the protocol-stack invariants, checked over a matrix of
// group size x faultload x seed with randomized delivery schedules. These
// are the properties the paper's §2 definitions promise:
//
//   BC : agreement, validity (unanimous input decides that input),
//        termination.
//   MVC: agreement, decision is a proposed value or ⊥, termination.
//   VC : agreement on one vector, entry i is p_i's proposal or ⊥, at least
//        f+1 entries from correct processes.
//   AB : agreement (prefix-identical delivery sequences), validity (every
//        correct broadcast eventually delivered), integrity (no
//        duplicates, no inventions).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/imbs_raynal_broadcast.h"
#include "sim/oracles.h"
#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::fast_lan;
using test::kDeadline;

enum class Fault { kNone, kCrash, kByzantine, kCrashAndByzantine };

struct Params {
  std::uint32_t n;
  Fault fault;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  const char* f = "";
  switch (info.param.fault) {
    case Fault::kNone: f = "ok"; break;
    case Fault::kCrash: f = "crash"; break;
    case Fault::kByzantine: f = "byz"; break;
    case Fault::kCrashAndByzantine: f = "crashbyz"; break;
  }
  return "n" + std::to_string(info.param.n) + "_" + f + "_s" +
         std::to_string(info.param.seed);
}

test::ClusterOptions options_for(const Params& p) {
  test::ClusterOptions o = fast_lan(p.n, 5000 + p.seed * 131 + p.n);
  o.lan.jitter_ns = 400'000;
  const std::uint32_t f = max_faults(p.n);
  switch (p.fault) {
    case Fault::kNone:
      break;
    case Fault::kCrash:
      for (std::uint32_t i = 0; i < f; ++i) o.crashed.push_back(p.n - 1 - i);
      break;
    case Fault::kByzantine:
      for (std::uint32_t i = 0; i < f; ++i) o.byzantine.push_back(p.n - 1 - i);
      break;
    case Fault::kCrashAndByzantine:
      // Split the fault budget (needs f >= 2).
      o.crashed.push_back(p.n - 1);
      for (std::uint32_t i = 1; i < f; ++i) o.byzantine.push_back(p.n - 1 - i);
      break;
  }
  return o;
}

class StackProperties : public ::testing::TestWithParam<Params> {};

TEST_P(StackProperties, BinaryConsensus) {
  Cluster c(options_for(GetParam()));
  std::vector<bool> proposals(c.n());
  // Seed-dependent proposal pattern, including splits.
  for (ProcessId p = 0; p < c.n(); ++p) {
    proposals[p] = ((GetParam().seed + p) % 3) != 0;
  }
  auto cap = test::run_binary_consensus(c, proposals);
  sim::oracle::Report rep;
  sim::oracle::check_bc(rep, c.correct_set(), proposals, cap.got);
  EXPECT_TRUE(rep.ok()) << rep.text();
}

TEST_P(StackProperties, MultiValuedConsensus) {
  Cluster c(options_for(GetParam()));
  std::vector<Bytes> proposals(c.n());
  // Two camps of proposals.
  for (ProcessId p = 0; p < c.n(); ++p) {
    proposals[p] = to_bytes(((GetParam().seed + p) % 2) ? "camp-A" : "camp-B");
  }
  auto cap = test::run_mvc(c, proposals);
  sim::oracle::Report rep;
  sim::oracle::check_mvc(rep, c.correct_set(), proposals, cap.got);
  EXPECT_TRUE(rep.ok()) << rep.text();
}

TEST_P(StackProperties, VectorConsensus) {
  Cluster c(options_for(GetParam()));
  std::vector<Bytes> proposals(c.n());
  for (ProcessId p = 0; p < c.n(); ++p) {
    proposals[p] = to_bytes("vc-" + std::to_string(p));
  }
  auto cap = test::run_vc(c, proposals);
  sim::oracle::Report rep;
  sim::oracle::check_vc(rep, c.correct_set(), proposals, cap.got,
                        max_faults(c.n()));
  EXPECT_TRUE(rep.ok()) << rep.text();
}

TEST_P(StackProperties, AtomicBroadcast) {
  Cluster c(options_for(GetParam()));
  std::vector<AtomicBroadcast*> ab(c.n(), nullptr);
  std::vector<sim::oracle::AbLog> log(c.n());
  sim::oracle::AbSent sent;
  const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  for (ProcessId p : c.live()) {
    ab[p] = &c.create_root<AtomicBroadcast>(
        p, id, [&log, p](ProcessId origin, std::uint64_t rbid, Slice payload) {
          log[p].push_back({origin, rbid, payload.to_bytes()});
        });
  }
  const std::uint32_t kPer = 3;
  for (std::uint32_t i = 0; i < kPer; ++i) {
    for (ProcessId p : c.live()) {
      c.call(p, [&, p, i] {
        Bytes b = to_bytes("m" + std::to_string(p) + "." + std::to_string(i));
        const std::uint64_t rbid = ab[p]->bcast(Bytes(b));
        if (c.correct(p)) sent[{p, rbid}] = std::move(b);
      });
    }
  }
  // Validity: everything the CORRECT processes broadcast must arrive at
  // every correct process (Byzantine senders' messages may or may not).
  const std::size_t must = kPer * c.correct_set().size();
  ASSERT_TRUE(c.run_until(
      [&] {
        for (ProcessId p : c.correct_set()) {
          std::size_t from_correct = 0;
          for (const auto& e : log[p]) {
            if (c.correct(e.origin)) ++from_correct;
          }
          if (from_correct < must) return false;
        }
        return true;
      },
      kDeadline))
      << "validity/termination";
  c.run_all();

  sim::oracle::Report rep;
  sim::oracle::check_ab(rep, c.correct_set(), log, sent);
  EXPECT_TRUE(rep.ok()) << rep.text();
}

std::vector<Params> make_matrix() {
  std::vector<Params> out;
  for (std::uint32_t n : {4u, 7u}) {
    for (Fault f : {Fault::kNone, Fault::kCrash, Fault::kByzantine}) {
      for (std::uint64_t seed = 0; seed < 3; ++seed) {
        out.push_back({n, f, seed});
      }
    }
  }
  // Mixed faults need f >= 2, i.e. n >= 7.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    out.push_back({7, Fault::kCrashAndByzantine, seed});
  }
  // One bigger group as a smoke-scale point.
  out.push_back({10, Fault::kByzantine, 0});
  out.push_back({10, Fault::kCrash, 0});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Matrix, StackProperties, ::testing::ValuesIn(make_matrix()),
                         param_name);

// --- per-variant battery ----------------------------------------------------
// The same §2 oracles, run against every non-default protocol-variant
// combination (core/variants.h). The fault budget respects the weakest
// layer: Imbs–Raynal RB tolerates only t = (n-1)/5, so a mixed stack gets
// min(f, (n-1)/5) faults; Crain BC requires the dealt common coin.

struct VariantParams {
  RbVariant rb;
  BcVariant bc;
  std::uint32_t n;
  Fault fault;
  std::uint64_t seed;
};

std::uint32_t variant_fault_budget(RbVariant rb, std::uint32_t n) {
  std::uint32_t f = max_faults(n);
  if (rb == RbVariant::kImbsRaynal) {
    f = std::min(f, ImbsRaynalBroadcast::max_faults_ir(n));
  }
  return f;
}

std::string variant_param_name(
    const ::testing::TestParamInfo<VariantParams>& info) {
  const char* f = "";
  switch (info.param.fault) {
    case Fault::kNone: f = "ok"; break;
    case Fault::kCrash: f = "crash"; break;
    case Fault::kByzantine: f = "byz"; break;
    case Fault::kCrashAndByzantine: f = "crashbyz"; break;
  }
  std::string rb = rb_variant_name(info.param.rb);
  std::string bc = bc_variant_name(info.param.bc);
  rb.erase(std::remove(rb.begin(), rb.end(), '-'), rb.end());
  return rb + "_" + bc + "_n" + std::to_string(info.param.n) + "_" + f +
         "_s" + std::to_string(info.param.seed);
}

test::ClusterOptions options_for_variant(const VariantParams& p) {
  test::ClusterOptions o = fast_lan(p.n, 7000 + p.seed * 131 + p.n);
  o.lan.jitter_ns = 400'000;
  o.stack.variants.rb = p.rb;
  o.stack.variants.bc = p.bc;
  if (p.bc == BcVariant::kCrain) o.stack.coin_mode = CoinMode::kDealt;
  const std::uint32_t f = variant_fault_budget(p.rb, p.n);
  switch (p.fault) {
    case Fault::kNone:
      break;
    case Fault::kCrash:
      for (std::uint32_t i = 0; i < f; ++i) o.crashed.push_back(p.n - 1 - i);
      break;
    case Fault::kByzantine:
      for (std::uint32_t i = 0; i < f; ++i) o.byzantine.push_back(p.n - 1 - i);
      break;
    case Fault::kCrashAndByzantine:
      o.crashed.push_back(p.n - 1);
      for (std::uint32_t i = 1; i < f; ++i) o.byzantine.push_back(p.n - 1 - i);
      break;
  }
  return o;
}

class VariantProperties : public ::testing::TestWithParam<VariantParams> {};

TEST_P(VariantProperties, BinaryConsensus) {
  Cluster c(options_for_variant(GetParam()));
  std::vector<bool> proposals(c.n());
  for (ProcessId p = 0; p < c.n(); ++p) {
    proposals[p] = ((GetParam().seed + p) % 3) != 0;
  }
  auto cap = test::run_binary_consensus(c, proposals);
  sim::oracle::Report rep;
  sim::oracle::check_bc(rep, c.correct_set(), proposals, cap.got);
  EXPECT_TRUE(rep.ok()) << rep.text();
}

TEST_P(VariantProperties, MultiValuedConsensus) {
  // The MVC composite drives the variant RB (INIT children) and the
  // variant BC through one protocol.
  Cluster c(options_for_variant(GetParam()));
  std::vector<Bytes> proposals(c.n());
  for (ProcessId p = 0; p < c.n(); ++p) {
    proposals[p] = to_bytes(((GetParam().seed + p) % 2) ? "camp-A" : "camp-B");
  }
  auto cap = test::run_mvc(c, proposals);
  sim::oracle::Report rep;
  sim::oracle::check_mvc(rep, c.correct_set(), proposals, cap.got);
  EXPECT_TRUE(rep.ok()) << rep.text();
}

TEST_P(VariantProperties, ReliableBroadcast) {
  // Agreement / integrity (correct origin's payload only) / totality for
  // the configured RB variant. The origin is always correct here; the
  // equivocating-origin case has its own test below.
  Cluster c(options_for_variant(GetParam()));
  test::DeliveryLog log(c.n());
  const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
  std::vector<RbAlgorithm*> rb(c.n(), nullptr);
  for (ProcessId p : c.live()) {
    rb[p] = &c.create_rb(p, id, 0, Attribution::kPayload, log.sink(p));
  }
  const Bytes m = to_bytes("variant-rb-" + std::to_string(GetParam().seed));
  c.call(0, [&] { rb[0]->bcast(Bytes(m)); });
  ASSERT_TRUE(
      c.run_until([&] { return log.everyone_has(c.correct_set(), 1); }, kDeadline));
  c.run_all();
  for (ProcessId p : c.correct_set()) {
    ASSERT_EQ(log.by_process[p].size(), 1u);
    EXPECT_EQ(log.by_process[p][0], m);
  }
}

std::vector<VariantParams> make_variant_matrix() {
  std::vector<VariantParams> out;
  const std::pair<RbVariant, BcVariant> combos[] = {
      {RbVariant::kImbsRaynal, BcVariant::kBracha},
      {RbVariant::kBracha, BcVariant::kCrain},
      {RbVariant::kImbsRaynal, BcVariant::kCrain},
  };
  for (const auto& [rb, bc] : combos) {
    for (Fault f : {Fault::kNone, Fault::kCrash, Fault::kByzantine}) {
      for (std::uint64_t seed = 0; seed < 2; ++seed) {
        out.push_back({rb, bc, 6, f, seed});
      }
    }
    // One point with slack between n and the IR bound (t = 1 at n = 7).
    out.push_back({rb, bc, 7, Fault::kByzantine, 0});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(VariantMatrix, VariantProperties,
                         ::testing::ValuesIn(make_variant_matrix()),
                         variant_param_name);

TEST(VariantProperties, ImbsRaynalEquivocatingOriginKeepsAgreement) {
  // A Byzantine origin equivocates (even peers get one payload, odd peers
  // another). Whatever subset of correct processes delivers, they must all
  // deliver the SAME payload (agreement), and if any correct process
  // delivers, all must (totality) — the witness-switch rule's job.
  std::size_t runs_with_delivery = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    test::ClusterOptions o = fast_lan(6, 9100 + seed);
    o.lan.jitter_ns = 400'000;
    o.stack.variants.rb = RbVariant::kImbsRaynal;
    o.byzantine = {0};
    o.adversary_factory = [] {
      return std::make_unique<EquivocationAdversary>(to_bytes("evil"));
    };
    Cluster c(o);
    test::DeliveryLog log(c.n());
    const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
    std::vector<RbAlgorithm*> rb(c.n(), nullptr);
    for (ProcessId p : c.live()) {
      rb[p] = &c.create_rb(p, id, 0, Attribution::kPayload, log.sink(p));
    }
    c.call(0, [&] { rb[0]->bcast(to_bytes("good")); });
    c.run_all();
    std::vector<std::optional<Bytes>> delivered(c.n());
    for (ProcessId p : c.correct_set()) {
      ASSERT_LE(log.by_process[p].size(), 1u);
      if (!log.by_process[p].empty()) delivered[p] = log.by_process[p][0];
    }
    for (ProcessId p : c.correct_set()) {
      if (delivered[p].has_value()) ++runs_with_delivery;
    }
    sim::oracle::Report rep;
    sim::oracle::broadcast_agreement(rep, c.correct_set(), delivered, "rb");
    sim::oracle::rb_totality(rep, c.correct_set(), delivered);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.text();
  }
  // With the even/odd 3-3 split at n = 6 neither payload can reach the
  // n - 2t = 4 witness quorum (3 witnesses each, Byzantine origin
  // included), so the instance must stall: zero deliveries, on every
  // schedule. A Byzantine origin owes no validity, only agreement.
  EXPECT_EQ(runs_with_delivery, 0u);
}

TEST(VariantProperties, ImbsRaynalWitnessSwitchGivesTotality) {
  // The victim case the witness-switch rule exists for: the origin omits
  // INIT (and its own WITNESS) to one process. The victim must cross the
  // n - 2t relay quorum on other processes' witnesses alone — without the
  // rule it sits one witness short of the n - t delivery quorum forever
  // while everyone else delivers, a totality violation.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    test::ClusterOptions o = fast_lan(6, 9700 + seed);
    o.lan.jitter_ns = 400'000;
    o.stack.variants.rb = RbVariant::kImbsRaynal;
    o.byzantine = {0};
    o.adversary_factory = [] {
      return std::make_unique<SelectiveOmissionAdversary>(1ull << 5);
    };
    Cluster c(o);
    test::DeliveryLog log(c.n());
    const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
    std::vector<RbAlgorithm*> rb(c.n(), nullptr);
    for (ProcessId p : c.live()) {
      rb[p] = &c.create_rb(p, id, 0, Attribution::kPayload, log.sink(p));
    }
    const Bytes m = to_bytes("good");
    c.call(0, [&] { rb[0]->bcast(Bytes(m)); });
    c.run_all();
    for (ProcessId p : c.correct_set()) {
      ASSERT_EQ(log.by_process[p].size(), 1u)
          << "seed " << seed << ": process " << p << " did not deliver";
      EXPECT_EQ(log.by_process[p][0], m) << "seed " << seed;
    }
  }
}

TEST(VariantProperties, InvalidVariantCombinationsAreRejected) {
  // Imbs–Raynal needs n > 5t with t >= 1, i.e. n >= 6.
  {
    test::ClusterOptions o = fast_lan(4, 1);
    o.stack.variants.rb = RbVariant::kImbsRaynal;
    EXPECT_THROW(Cluster c(o), std::invalid_argument);
  }
  // Crain without the dealt common coin can violate agreement.
  {
    test::ClusterOptions o = fast_lan(4, 1);
    o.stack.variants.bc = BcVariant::kCrain;
    EXPECT_THROW(Cluster c(o), std::invalid_argument);
  }
  // The same selections are fine once the preconditions hold.
  {
    test::ClusterOptions o = fast_lan(6, 1);
    o.stack.variants.rb = RbVariant::kImbsRaynal;
    o.stack.variants.bc = BcVariant::kCrain;
    o.stack.coin_mode = CoinMode::kDealt;
    EXPECT_NO_THROW(Cluster c(o));
  }
}

}  // namespace
}  // namespace ritas
