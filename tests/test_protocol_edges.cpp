// Edge paths of the broadcast primitives that the happy-path suites do not
// reach: reliable-broadcast totality amplification (deliver without ever
// seeing the INIT), READY-before-ECHO, echo-broadcast MAT-before-INIT, and
// the MVC-over-reliable-broadcast ablation variant.
#include <gtest/gtest.h>

#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::DeliveryLog;
using test::fast_lan;
using test::kDeadline;

TEST(ProtocolEdges, RbTotalityWithoutInitAtOneProcess) {
  // A (corrupt) origin sends INIT to processes 0..2 only. They echo among
  // everyone, so process 3 — which never sees an INIT — must still deliver
  // through the ECHO/READY amplification (Bracha's totality).
  Cluster c(fast_lan(4, 1));
  DeliveryLog log(4);
  const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
  for (ProcessId p : c.live()) {
    c.create_rb(p, id, /*origin=*/3, Attribution::kPayload,
                                     log.sink(p));
  }
  Message init;
  init.path = id;
  init.tag = ReliableBroadcast::kInit;
  init.payload = to_bytes("partial init");
  for (ProcessId p : {0u, 1u, 2u}) {
    c.stack(p).on_packet(3, init.encode());
  }
  ASSERT_TRUE(c.run_until([&] { return !log.by_process[3].empty(); }, kDeadline));
  EXPECT_EQ(to_string(log.by_process[3][0]), "partial init");
  // ... and of course 0..2 delivered the same thing.
  for (ProcessId p : {0u, 1u, 2u}) {
    ASSERT_EQ(log.by_process[p].size(), 1u);
    EXPECT_EQ(to_string(log.by_process[p][0]), "partial init");
  }
}

TEST(ProtocolEdges, RbInitToTooFewProcessesDeliversNowhere) {
  // INIT reaching only 2 of 4 cannot assemble the echo quorum of 3; nobody
  // may deliver (and nobody may wedge).
  Cluster c(fast_lan(4, 2));
  DeliveryLog log(4);
  const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
  for (ProcessId p : c.live()) {
    c.create_rb(p, id, 3, Attribution::kPayload, log.sink(p));
  }
  Message init;
  init.path = id;
  init.tag = ReliableBroadcast::kInit;
  init.payload = to_bytes("too partial");
  for (ProcessId p : {0u, 1u}) {
    c.stack(p).on_packet(3, init.encode());
  }
  c.run_all();
  for (ProcessId p : c.live()) {
    EXPECT_TRUE(log.by_process[p].empty()) << "p" << p;
  }
}

TEST(ProtocolEdges, RbReadyAmplificationFromReadiesAlone) {
  // f+1 = 2 READY(m) messages must trigger a READY even at a process that
  // saw neither INIT nor enough ECHOs; 2f+1 READYs then deliver.
  Cluster c(fast_lan(4, 3));
  DeliveryLog log(4);
  const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
  for (ProcessId p : c.live()) {
    c.create_rb(p, id, 3, Attribution::kPayload, log.sink(p));
  }
  // Forge READYs from peers 1 and 2 into p0 (as if they ran far ahead).
  Message ready;
  ready.path = id;
  ready.tag = ReliableBroadcast::kReady;
  ready.payload = to_bytes("amplified");
  c.stack(0).on_packet(1, ready.encode());
  c.stack(0).on_packet(2, ready.encode());
  c.run_all();
  // p0 relayed its own READY; that is 3 READYs total at p0 (1, 2, self):
  // delivery threshold met at p0 alone.
  ASSERT_EQ(log.by_process[0].size(), 1u);
  EXPECT_EQ(to_string(log.by_process[0][0]), "amplified");
}

TEST(ProtocolEdges, EbMatBeforeInitIsBufferedThenVerified) {
  // Only a corrupt origin can reorder MAT before INIT (channels are FIFO);
  // the receiver must buffer the column and deliver once the INIT shows up
  // and the hashes verify. We splice a correct origin's traffic by hand.
  Cluster c(fast_lan(4, 4));
  DeliveryLog log(4);
  const InstanceId id = InstanceId::root(ProtocolType::kEchoBroadcast, 1);
  std::vector<EchoBroadcast*> eb(4, nullptr);
  for (ProcessId p : c.live()) {
    eb[p] = &c.create_root<EchoBroadcast>(p, id, 0, Attribution::kPayload,
                                          log.sink(p));
  }
  c.call(0, [&] { eb[0]->bcast(to_bytes("spliced")); });
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 1); }, kDeadline));

  // Now replay the same dance against a fresh instance at p1, delivering
  // the frames out of order: capture is impractical here, so instead drive
  // the receiver directly with a hand-built matrix column for a known m.
  const InstanceId id2 = InstanceId::root(ProtocolType::kEchoBroadcast, 2);
  DeliveryLog log2(4);
  auto& victim = c.create_root<EchoBroadcast>(1, id2, 0, Attribution::kPayload,
                                              log2.sink(1));
  (void)victim;
  const Bytes m = to_bytes("reordered");
  // Column for receiver 1: cell k = SHA-1(m || s_k1). We know s_k1 only
  // for k = 1 (p1's own key); fill the rest with garbage — f+1 = 2 valid
  // cells are needed, so add p0's cell using the cluster's dealt keys.
  Bytes column(4 * Sha1::kDigestSize, 0);
  for (ProcessId k : {0u, 1u}) {
    Sha1 h;
    h.update(m);
    h.update(c.stack(1).keys().key(k));  // s_1k == s_k1
    const auto d = h.finish();
    std::copy(d.begin(), d.end(), column.begin() + k * Sha1::kDigestSize);
  }
  Message mat;
  mat.path = id2;
  mat.tag = EchoBroadcast::kMat;
  mat.payload = Bytes(column);
  c.stack(1).on_packet(0, mat.encode());  // MAT first...
  EXPECT_TRUE(log2.by_process[1].empty());
  Message init;
  init.path = id2;
  init.tag = EchoBroadcast::kInit;
  init.payload = Bytes(m);
  c.stack(1).on_packet(0, init.encode());  // ...INIT second
  ASSERT_EQ(log2.by_process[1].size(), 1u);
  EXPECT_EQ(to_string(log2.by_process[1][0]), "reordered");
}

TEST(ProtocolEdges, EbColumnWithTooFewValidCellsRejected) {
  Cluster c(fast_lan(4, 5));
  DeliveryLog log(4);
  const InstanceId id = InstanceId::root(ProtocolType::kEchoBroadcast, 1);
  c.create_root<EchoBroadcast>(1, id, 0, Attribution::kPayload, log.sink(1));
  const Bytes m = to_bytes("one good cell");
  Bytes column(4 * Sha1::kDigestSize, 0);
  {
    Sha1 h;  // only p1's own cell is valid: 1 < f+1 = 2
    h.update(m);
    h.update(c.stack(1).keys().key(1));
    const auto d = h.finish();
    std::copy(d.begin(), d.end(), column.begin() + 1 * Sha1::kDigestSize);
  }
  Message init;
  init.path = id;
  init.tag = EchoBroadcast::kInit;
  init.payload = Bytes(m);
  c.stack(1).on_packet(0, init.encode());
  Message mat;
  mat.path = id;
  mat.tag = EchoBroadcast::kMat;
  mat.payload = Bytes(column);
  c.stack(1).on_packet(0, mat.encode());
  c.run_all();
  EXPECT_TRUE(log.by_process[1].empty());
  EXPECT_GT(c.stack(1).metrics().invalid_dropped, 0u);
}

TEST(ProtocolEdges, MvcOverReliableBroadcastVariantStillCorrect) {
  // The ablation configuration (VECT phase via reliable broadcast) must
  // preserve every MVC property — it is the unoptimized original protocol.
  test::ClusterOptions o = fast_lan(4, 6);
  o.stack.mvc_vect_via_rb = true;
  Cluster c(o);
  auto cap = test::run_mvc(
      c, {to_bytes("rbv"), to_bytes("rbv"), to_bytes("rbv"), to_bytes("rbv")});
  for (ProcessId p : c.correct_set()) {
    ASSERT_TRUE(cap.got[p].has_value());
    ASSERT_TRUE(cap.got[p]->has_value());
    EXPECT_EQ(to_string(**cap.got[p]), "rbv");
  }
  // And the echo-broadcast counter stays at zero — everything went via RB.
  EXPECT_EQ(c.total_metrics().eb_started_payload +
                c.total_metrics().eb_started_agreement,
            0u);
}

TEST(ProtocolEdges, MvcOverRbVariantUnderByzantine) {
  test::ClusterOptions o = fast_lan(4, 7);
  o.stack.mvc_vect_via_rb = true;
  o.byzantine = {0};
  Cluster c(o);
  auto cap = test::run_mvc(
      c, {to_bytes("w"), to_bytes("w"), to_bytes("w"), to_bytes("w")});
  for (ProcessId p : c.correct_set()) {
    ASSERT_TRUE(cap.got[p].has_value());
    ASSERT_TRUE(cap.got[p]->has_value());
  }
}

TEST(ProtocolEdges, BcValidationDisabledStillTerminatesUnattacked) {
  // The ablation switch must not break benign runs.
  test::ClusterOptions o = fast_lan(4, 8);
  o.stack.bc_disable_validation = true;
  Cluster c(o);
  auto cap = test::run_binary_consensus(c, {true, true, true, true});
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  for (ProcessId p : c.correct_set()) EXPECT_TRUE(*cap.got[p]);
}

}  // namespace
}  // namespace ritas
