// Quorum arithmetic: the thresholds every protocol layer builds on.
#include "core/types.h"

#include <gtest/gtest.h>

namespace ritas {
namespace {

TEST(Quorums, MaxFaults) {
  EXPECT_EQ(max_faults(4), 1u);
  EXPECT_EQ(max_faults(5), 1u);
  EXPECT_EQ(max_faults(6), 1u);
  EXPECT_EQ(max_faults(7), 2u);
  EXPECT_EQ(max_faults(10), 3u);
  EXPECT_EQ(max_faults(13), 4u);
  EXPECT_EQ(max_faults(31), 10u);
}

TEST(Quorums, PaperValuesAtNFour) {
  const Quorums q(4);
  EXPECT_EQ(q.f, 1u);
  EXPECT_EQ(q.n_minus_f(), 3u);
  EXPECT_EQ(q.n_minus_2f(), 2u);
  EXPECT_EQ(q.rb_echo_threshold(), 3u);   // floor((n+f)/2)+1
  EXPECT_EQ(q.rb_ready_relay(), 2u);      // f+1
  EXPECT_EQ(q.rb_deliver_threshold(), 3u);  // 2f+1
  EXPECT_EQ(q.eb_deliver_threshold(), 2u);  // f+1
  EXPECT_EQ(q.bc_decide_threshold(), 3u);
  EXPECT_EQ(q.bc_adopt_threshold(), 2u);
}

class QuorumSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(QuorumSweep, InvariantsHoldForAllGroupSizes) {
  const std::uint32_t n = GetParam();
  const Quorums q(n);
  // Resilience bound.
  EXPECT_GE(n, 3 * q.f + 1);
  // A process can always wait for n-f messages (the rest may be faulty).
  EXPECT_GE(q.n_minus_f(), 2 * q.f + 1);
  // Two (n-f)-quorums intersect in at least f+1 processes: enough to pin a
  // value through at least one correct process.
  EXPECT_GE(2 * q.n_minus_f(), n + q.f + 1);
  // Echo quorum majority: two echo quorums intersect in a correct process,
  // preventing two different payloads from both reaching it.
  EXPECT_GE(2 * q.rb_echo_threshold(), n + q.f + 1);
  // Delivering on 2f+1 READYs means f+1 correct READYs, which guarantees
  // every correct process eventually relays (f+1 reach the relay rule).
  EXPECT_GT(q.rb_deliver_threshold(), 2 * q.f);
  EXPECT_GE(q.rb_deliver_threshold(), q.rb_ready_relay() + q.f);
  // n-2f responses always contain a correct one.
  EXPECT_GE(q.n_minus_2f(), q.f + 1);
}

INSTANTIATE_TEST_SUITE_P(AllSizes, QuorumSweep,
                         ::testing::Values(4u, 5u, 6u, 7u, 8u, 9u, 10u, 13u,
                                           16u, 22u, 31u, 100u));

}  // namespace
}  // namespace ritas
