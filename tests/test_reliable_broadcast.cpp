// Reliable broadcast (Bracha) over the simulated LAN: validity, agreement,
// totality, Byzantine equivocation, crash faults, group-size sweeps.
#include "core/reliable_broadcast.h"

#include <gtest/gtest.h>

#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::DeliveryLog;
using test::fast_lan;
using test::kDeadline;

InstanceId rb_root(std::uint64_t seq = 1) {
  return InstanceId::root(ProtocolType::kReliableBroadcast, seq);
}

/// Creates one RB instance (same id) at every live process; `origin` is the
/// sender. Returns pointers indexed by process.
std::vector<RbAlgorithm*> make_rb(Cluster& c, DeliveryLog& log,
                                        ProcessId origin,
                                        std::uint64_t seq = 1) {
  std::vector<RbAlgorithm*> rb(c.n(), nullptr);
  for (ProcessId p : c.live()) {
    rb[p] = &c.create_rb(p, rb_root(seq), origin,
                                              Attribution::kPayload, log.sink(p));
  }
  return rb;
}

TEST(ReliableBroadcast, DeliversToAllCorrectProcesses) {
  Cluster c(fast_lan(4, 1));
  DeliveryLog log(4);
  auto rb = make_rb(c, log, 0);
  c.call(0, [&] { rb[0]->bcast(to_bytes("hello")); });
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 1); }, kDeadline));
  for (ProcessId p : c.live()) {
    ASSERT_EQ(log.by_process[p].size(), 1u);
    EXPECT_EQ(to_string(log.by_process[p][0]), "hello");
  }
}

TEST(ReliableBroadcast, SenderDeliversItsOwnMessage) {
  Cluster c(fast_lan(4, 2));
  DeliveryLog log(4);
  auto rb = make_rb(c, log, 2);
  c.call(2, [&] { rb[2]->bcast(to_bytes("self")); });
  ASSERT_TRUE(c.run_until([&] { return !log.by_process[2].empty(); }, kDeadline));
  EXPECT_EQ(to_string(log.by_process[2][0]), "self");
  EXPECT_TRUE(rb[2]->delivered());
}

TEST(ReliableBroadcast, EmptyPayload) {
  Cluster c(fast_lan(4, 3));
  DeliveryLog log(4);
  auto rb = make_rb(c, log, 0);
  c.call(0, [&] { rb[0]->bcast(Bytes{}); });
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 1); }, kDeadline));
  EXPECT_TRUE(log.by_process[3][0].empty());
}

TEST(ReliableBroadcast, LargePayload) {
  Cluster c(fast_lan(4, 4));
  DeliveryLog log(4);
  auto rb = make_rb(c, log, 0);
  const Bytes big(64 * 1024, 0x5a);
  c.call(0, [&] { rb[0]->bcast(Bytes(big)); });
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 1); }, kDeadline));
  EXPECT_EQ(log.by_process[1][0], big);
}

TEST(ReliableBroadcast, ToleratesCrashedReceiver) {
  test::ClusterOptions o = fast_lan(4, 5);
  o.crashed = {3};
  Cluster c(o);
  DeliveryLog log(4);
  auto rb = make_rb(c, log, 0);
  c.call(0, [&] { rb[0]->bcast(to_bytes("m")); });
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 1); }, kDeadline));
  EXPECT_TRUE(log.by_process[3].empty());
}

TEST(ReliableBroadcast, CrashedOriginDeliversNothing) {
  test::ClusterOptions o = fast_lan(4, 6);
  o.crashed = {0};
  Cluster c(o);
  DeliveryLog log(4);
  make_rb(c, log, 0);  // origin crashed, never broadcasts
  c.run_all();
  for (ProcessId p : c.live()) EXPECT_TRUE(log.by_process[p].empty());
}

TEST(ReliableBroadcast, EquivocatingOriginCannotSplitDelivery) {
  // Byzantine origin sends INIT "even" to even peers, "odd" to odd peers.
  // Agreement: every correct process that delivers must deliver the same
  // payload (with n=4, f=1 the echo quorum is 3, so at most one payload can
  // gather it).
  class Equivocator : public Adversary {
   public:
    std::optional<Bytes> rb_equivocate(ByteView) override {
      return to_bytes("odd-payload");
    }
  };
  test::ClusterOptions o = fast_lan(4, 7);
  o.byzantine = {0};
  o.adversary_factory = [] { return std::make_unique<Equivocator>(); };
  Cluster c(o);
  DeliveryLog log(4);
  auto rb = make_rb(c, log, 0);
  c.call(0, [&] { rb[0]->bcast(to_bytes("even-payload")); });
  c.run_all();

  std::optional<std::string> delivered;
  for (ProcessId p : c.correct_set()) {
    for (const Bytes& b : log.by_process[p]) {
      const std::string s = to_string(b);
      if (!delivered) delivered = s;
      EXPECT_EQ(*delivered, s) << "correct processes split on the payload";
    }
  }
}

TEST(ReliableBroadcast, SecondInitFromOriginIgnored) {
  Cluster c(fast_lan(4, 8));
  DeliveryLog log(4);
  auto rb = make_rb(c, log, 0);
  c.call(0, [&] { rb[0]->bcast(to_bytes("first")); });
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 1); }, kDeadline));
  EXPECT_THROW(rb[0]->bcast(to_bytes("second")), std::logic_error);
  EXPECT_EQ(log.by_process[1].size(), 1u);
}

TEST(ReliableBroadcast, NonOriginCannotBroadcast) {
  Cluster c(fast_lan(4, 9));
  DeliveryLog log(4);
  auto rb = make_rb(c, log, 0);
  EXPECT_THROW(rb[1]->bcast(to_bytes("not mine")), std::logic_error);
}

TEST(ReliableBroadcast, ConcurrentInstancesStayIsolated) {
  Cluster c(fast_lan(4, 10));
  DeliveryLog log_a(4), log_b(4);
  auto a = make_rb(c, log_a, 0, 1);
  auto b = make_rb(c, log_b, 1, 2);
  c.call(0, [&] { a[0]->bcast(to_bytes("from-0")); });
  c.call(1, [&] { b[1]->bcast(to_bytes("from-1")); });
  ASSERT_TRUE(c.run_until(
      [&] {
        return log_a.everyone_has(c.live(), 1) && log_b.everyone_has(c.live(), 1);
      },
      kDeadline));
  EXPECT_EQ(to_string(log_a.by_process[2][0]), "from-0");
  EXPECT_EQ(to_string(log_b.by_process[2][0]), "from-1");
}

class RbGroupSize : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RbGroupSize, DeliversAcrossGroupSizes) {
  const std::uint32_t n = GetParam();
  Cluster c(fast_lan(n, 11 + n));
  DeliveryLog log(n);
  auto rb = make_rb(c, log, n - 1);
  c.call(n - 1, [&] { rb[n - 1]->bcast(to_bytes("sweep")); });
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 1); }, kDeadline));
  for (ProcessId p : c.live()) {
    EXPECT_EQ(to_string(log.by_process[p][0]), "sweep");
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, RbGroupSize,
                         ::testing::Values(4u, 5u, 6u, 7u, 10u, 13u));

class RbCrashSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RbCrashSweep, ToleratesMaxCrashes) {
  // n = 3f+1 with f crashed receivers: delivery must still happen.
  const std::uint32_t f = GetParam();
  const std::uint32_t n = 3 * f + 1;
  test::ClusterOptions o = fast_lan(n, 100 + f);
  for (std::uint32_t i = 0; i < f; ++i) o.crashed.push_back(n - 1 - i);
  Cluster c(o);
  DeliveryLog log(n);
  auto rb = make_rb(c, log, 0);
  c.call(0, [&] { rb[0]->bcast(to_bytes("resilient")); });
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 1); }, kDeadline));
}

INSTANTIATE_TEST_SUITE_P(Faults, RbCrashSweep, ::testing::Values(1u, 2u, 3u));

TEST(ReliableBroadcast, ManySeedsDeterministicAndAgreeing) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    test::ClusterOptions o = fast_lan(4, seed);
    o.lan.jitter_ns = 100'000;
    Cluster c(o);
    DeliveryLog log(4);
    auto rb = make_rb(c, log, 0);
    c.call(0, [&] { rb[0]->bcast(to_bytes("seeded")); });
    ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 1); }, kDeadline))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace ritas
