#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ritas {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, CloseSeedsIndependent) {
  // SplitMix64 seeding must decorrelate adjacent seeds.
  Rng a(100), b(101);
  int same_bit = 0;
  for (int i = 0; i < 1000; ++i) {
    if ((a.next() >> 63) == (b.next() >> 63)) ++same_bit;
  }
  EXPECT_GT(same_bit, 400);
  EXPECT_LT(same_bit, 600);
}

TEST(Rng, BelowRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
  EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BelowRoughlyUniform) {
  Rng r(11);
  std::vector<int> buckets(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++buckets[r.below(10)];
  for (int b : buckets) {
    EXPECT_GT(b, kDraws / 10 - 800);
    EXPECT_LT(b, kDraws / 10 + 800);
  }
}

TEST(Rng, CoinIsFair) {
  Rng r(13);
  int heads = 0;
  const int kFlips = 100000;
  for (int i = 0; i < kFlips; ++i) {
    if (r.coin()) ++heads;
  }
  EXPECT_GT(heads, kFlips / 2 - 1000);
  EXPECT_LT(heads, kFlips / 2 + 1000);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SplitMixKnownSequence) {
  // Reference values for the SplitMix64 algorithm, seed 0.
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64(s), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(s), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64(s), 0x06c45d188009454fULL);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace ritas
