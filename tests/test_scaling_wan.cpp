// Large-n / WAN coverage: the shared safety oracles at n in {7, 10, 16}
// under WAN schedules for every variant combo within its resilience bound,
// the bit-identical campaign determinism pin, and the churn tail-latency
// scenario. This is the test side of bench_scaling_wan: the bench's rows
// are run_campaign results, so pinning run_campaign pins the bench.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/imbs_raynal_broadcast.h"
#include "sim/campaign.h"
#include "sim/explore.h"

namespace ritas::sim {
namespace {

Schedule wan_schedule(Workload w, std::uint32_t n, VariantConfig variants,
                      std::uint32_t byz_count, std::uint64_t seed) {
  Schedule s;
  s.seed = seed;
  s.n = n;
  s.workload = w;
  s.messages = 1;
  s.max_events = 2'000'000;
  s.variants = variants;
  if (variants.bc == BcVariant::kCrain) s.coin_mode = CoinMode::kDealt;
  s.wan.enabled = true;
  s.wan.sites = 4;
  s.wan.jitter_permille = 100;
  s.wan.loss_ppm = 2000;
  // Top ids, ascending: from_json canonicalizes the list sorted, so build
  // it sorted for exact round-trips.
  for (std::uint32_t i = 0; i < byz_count; ++i) {
    s.byzantine.push_back(static_cast<ProcessId>(n - byz_count + i));
  }
  if (byz_count > 0) s.adversary_hooks = hook::kPaper;
  return s;
}

std::vector<VariantConfig> all_variant_combos() {
  return {
      {RbVariant::kBracha, BcVariant::kBracha},
      {RbVariant::kImbsRaynal, BcVariant::kBracha},
      {RbVariant::kBracha, BcVariant::kCrain},
      {RbVariant::kImbsRaynal, BcVariant::kCrain},
  };
}

/// The combo's own resilience bound (Imbs–Raynal only tolerates (n-1)/5).
std::uint32_t combo_fault_bound(const VariantConfig& v, std::uint32_t n) {
  std::uint32_t f = max_faults(n);
  if (v.rb == RbVariant::kImbsRaynal) {
    f = std::min(f, ImbsRaynalBroadcast::max_faults_ir(n));
  }
  return f;
}

std::string cell_name(Workload w, std::uint32_t n, const VariantConfig& v,
                      std::uint32_t byz) {
  return std::string(workload_name(w)) + " n=" + std::to_string(n) + " rb=" +
         rb_variant_name(v.rb) + " bc=" + bc_variant_name(v.bc) +
         " byz=" + std::to_string(byz);
}

TEST(ScalingWan, FaultFreeSafetyBatteryAllVariantsLargeN) {
  const std::vector<Workload> workloads = {
      Workload::kReliableBroadcast, Workload::kBinaryConsensus,
      Workload::kMultiValuedConsensus, Workload::kVectorConsensus,
      Workload::kAtomicBroadcast};
  std::uint64_t seed = 7100;
  for (std::uint32_t n : {7u, 10u, 16u}) {
    for (const VariantConfig& v : all_variant_combos()) {
      for (Workload w : workloads) {
        const Schedule s = wan_schedule(w, n, v, /*byz=*/0, seed++);
        const TrialResult r = Explorer::run_trial(s);
        const std::string cell = cell_name(w, n, v, 0);
        EXPECT_TRUE(r.violations.empty())
            << cell << ": " << r.violations.front();
        EXPECT_TRUE(r.completed) << cell << " stalled after " << r.events
                                 << " events";
      }
    }
  }
}

TEST(ScalingWan, ByzantineSafetyAtResilienceBound) {
  // The §4.2 faultload at each combo's own bound; safety must hold even if
  // a run exhausts its budget (randomized termination is probability-1,
  // not bounded, so only safety is asserted here).
  std::uint64_t seed = 9300;
  for (std::uint32_t n : {7u, 10u, 16u}) {
    for (const VariantConfig& v : all_variant_combos()) {
      const std::uint32_t f = combo_fault_bound(v, n);
      ASSERT_GT(f, 0u);
      for (Workload w : {Workload::kBinaryConsensus,
                         Workload::kAtomicBroadcast}) {
        const Schedule s = wan_schedule(w, n, v, f, seed++);
        const TrialResult r = Explorer::run_trial(s);
        EXPECT_TRUE(r.violations.empty())
            << cell_name(w, n, v, f) << ": " << r.violations.front();
      }
    }
  }
}

TEST(ScalingWan, CampaignRerunsAreBitIdentical) {
  // The determinism pin behind BENCH_scaling_wan.json: same options =>
  // identical fingerprint, tail percentiles and virtual end time.
  CampaignOptions o;
  o.n = 7;
  o.net = NetProfile::kWan;
  o.fault = CampaignFault::kChurn;
  o.seed = 0xfeedbeef;
  o.ops = 60;
  const CampaignResult a = run_campaign(o);
  const CampaignResult b = run_campaign(o);
  EXPECT_TRUE(a.completed);
  EXPECT_TRUE(a.ordered);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.latency.p50(), b.latency.p50());
  EXPECT_EQ(a.latency.p99(), b.latency.p99());
  EXPECT_EQ(a.latency.p999(), b.latency.p999());
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.backlog_peak, b.backlog_peak);

  // And a different seed is a genuinely different run.
  CampaignOptions o2 = o;
  o2.seed = 0xfeedbee5;
  const CampaignResult c2 = run_campaign(o2);
  EXPECT_NE(a.fingerprint, c2.fingerprint);
}

TEST(ScalingWan, ChurnMidLoadHoldsOrderWithinStallBudget) {
  // kill_link churn mid-load: total order must hold, every op must still
  // complete, and the run must finish inside a generous stall budget (the
  // kill windows hold frames, they never lose them).
  CampaignOptions o;
  o.n = 7;
  o.net = NetProfile::kLan;
  o.fault = CampaignFault::kChurn;
  o.seed = 0xc0ffee;
  o.ops = 80;
  o.deadline = 60 * kSecond;  // stall budget
  const CampaignResult r = run_campaign(o);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.ordered);
  EXPECT_EQ(r.ops_completed, r.ops_offered);
  EXPECT_LT(r.elapsed, 60 * kSecond);
  // Held frames stretch the tail beyond the median.
  EXPECT_GE(r.latency.p999(), r.latency.p50());
}

TEST(ScalingWan, WanTailDominatesLan) {
  CampaignOptions lan;
  lan.n = 7;
  lan.seed = 77;
  lan.ops = 60;
  CampaignOptions wan = lan;
  wan.net = NetProfile::kWan;
  const CampaignResult rl = run_campaign(lan);
  const CampaignResult rw = run_campaign(wan);
  ASSERT_TRUE(rl.completed);
  ASSERT_TRUE(rw.completed);
  EXPECT_GT(rw.latency.p99(), rl.latency.p99());
  EXPECT_GT(rw.latency.p50(), rl.latency.p50());
}

TEST(ScalingWan, ScheduleJsonRoundTripsWanSpec) {
  Schedule s = wan_schedule(Workload::kAtomicBroadcast, 10,
                            {RbVariant::kBracha, BcVariant::kBracha},
                            /*byz=*/2, /*seed=*/123);
  s.wan.loss_ppm = 5000;
  s.wan.rto_ns = 150 * kMillisecond;
  const auto back = Schedule::from_json(s.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s);

  // Legacy default: a LAN schedule serializes without a wan member and
  // deserializes disabled.
  Schedule lan = s;
  lan.wan = WanSpec{};
  const std::string text = lan.to_json();
  EXPECT_EQ(text.find("\"wan\""), std::string::npos);
  const auto lan_back = Schedule::from_json(text);
  ASSERT_TRUE(lan_back.has_value());
  EXPECT_FALSE(lan_back->wan.enabled);
  EXPECT_EQ(*lan_back, lan);
}

TEST(ScalingWan, ScheduleJsonRejectsInvalidWanSpec) {
  Schedule s = wan_schedule(Workload::kBinaryConsensus, 4,
                            {RbVariant::kBracha, BcVariant::kBracha}, 0, 1);
  const std::string good = s.to_json();
  auto mutate = [&](const std::string& from, const std::string& to) {
    std::string t = good;
    const auto pos = t.find(from);
    ASSERT_NE(pos, std::string::npos) << from;
    t.replace(pos, from.size(), to);
    EXPECT_FALSE(Schedule::from_json(t).has_value()) << to;
  };
  mutate("\"sites\":4", "\"sites\":0");
  mutate("\"sites\":4", "\"sites\":9");
  mutate("\"jitter_permille\":100", "\"jitter_permille\":2000");
  mutate("\"loss_ppm\":2000", "\"loss_ppm\":1000000");
}

TEST(ScalingWan, WanTrialsReplayBitIdentically) {
  const Schedule s = wan_schedule(Workload::kAtomicBroadcast, 7,
                                  {RbVariant::kBracha, BcVariant::kBracha},
                                  /*byz=*/2, /*seed=*/555);
  const TrialResult a = Explorer::run_trial(s);
  const TrialResult b = Explorer::run_trial(s);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_TRUE(a.violations.empty()) << a.violations.front();
}

}  // namespace
}  // namespace ritas::sim
