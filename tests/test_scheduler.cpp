#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace ritas::sim {
namespace {

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(300, [&] { order.push_back(3); });
  s.at(100, [&] { order.push_back(1); });
  s.at(200, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 300u);
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.at(50, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  Time seen = 0;
  s.at(100, [&] {
    s.at(10, [&] { seen = s.now(); });  // in the past: clamps to 100
  });
  s.run();
  EXPECT_EQ(seen, 100u);
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) s.after(10, chain);
  };
  s.after(0, chain);
  s.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), 40u);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.at(1, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, RunMaxEvents) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.at(static_cast<Time>(i), [&] { ++count; });
  EXPECT_EQ(s.run(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.pending(), 7u);
}

TEST(Scheduler, RunUntilPredicate) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) s.at(static_cast<Time>(i * 10), [&] { ++count; });
  EXPECT_TRUE(s.run_until([&] { return count >= 4; }, 1000));
  EXPECT_EQ(count, 4);
  EXPECT_EQ(s.now(), 40u);
}

TEST(Scheduler, RunUntilDeadline) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) s.at(static_cast<Time>(i * 10), [&] { ++count; });
  EXPECT_FALSE(s.run_until([&] { return count >= 100; }, 35));
  EXPECT_EQ(count, 3);  // events at 10, 20, 30 ran; 40 is past the deadline
}

TEST(Scheduler, RunUntilEmptyQueue) {
  Scheduler s;
  EXPECT_FALSE(s.run_until([] { return false; }, 1000));
}

}  // namespace
}  // namespace ritas::sim
