#include "common/serialize.h"

#include <gtest/gtest.h>

#include <limits>

namespace ritas {
namespace {

TEST(Serialize, IntegersRoundTrip) {
  Writer w;
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789abcde);
  w.u64(0x0123456789abcdefULL);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0x12);
  EXPECT_EQ(r.u16(), 0x3456);
  EXPECT_EQ(r.u32(), 0x789abcdeu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(Serialize, ExtremeValues) {
  Writer w;
  w.u64(0);
  w.u64(std::numeric_limits<std::uint64_t>::max());
  Reader r(w.data());
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_EQ(r.u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_TRUE(r.done());
}

TEST(Serialize, BytesRoundTrip) {
  Writer w;
  w.bytes(to_bytes("payload"));
  w.bytes(Bytes{});
  Reader r(w.data());
  EXPECT_EQ(to_string(r.bytes()), "payload");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.done());
}

TEST(Serialize, StringRoundTrip) {
  Writer w;
  w.str("hello");
  Reader r(w.data());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Serialize, TruncatedIntegerFails) {
  Writer w;
  w.u16(7);
  Reader r(w.data());
  r.u32();  // asks for more than available
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
}

TEST(Serialize, TruncatedBytesFails) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow
  w.u8(1);
  Reader r(w.data());
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, StickyFailure) {
  Reader r(Bytes{});
  EXPECT_EQ(r.u8(), 0);
  EXPECT_FALSE(r.ok());
  // Every later read also reports zero and failure.
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, HugeLengthPrefixDoesNotAllocate) {
  Writer w;
  w.u32(0xffffffffu);  // absurd length; only 4 bytes of input exist
  Reader r(w.data());
  const Bytes b = r.bytes();
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, RawAndRemaining) {
  Writer w;
  w.raw(to_bytes("abcdef"));
  Reader r(w.data());
  EXPECT_EQ(r.remaining(), 6u);
  EXPECT_EQ(to_string(r.raw(3)), "abc");
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_EQ(to_string(r.raw(3)), "def");
  EXPECT_TRUE(r.done());
}

TEST(Serialize, MixedRoundTrip) {
  Writer w;
  w.u8(3);
  w.str("key");
  w.bytes(to_bytes("value"));
  w.u64(42);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 3);
  EXPECT_EQ(r.str(), "key");
  EXPECT_EQ(to_string(r.bytes()), "value");
  EXPECT_EQ(r.u64(), 42u);
  EXPECT_TRUE(r.done());
}

}  // namespace
}  // namespace ritas
