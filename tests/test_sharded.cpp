// Sharded multi-group SMR over one shared mesh: partition correctness,
// per-shard linearizable total order (the AB oracles applied per group),
// request forwarding, foreign-group containment, per-shard determinism,
// and the usual crash/Byzantine faultloads.
#include "sim/sharded.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim_helpers.h"
#include "smr/kv_machine.h"

namespace ritas::sim {
namespace {

using smr::KvCommand;
using smr::ShardId;
using smr::shard_of_key;
using test::kDeadline;

Bytes set_cmd(const std::string& key, const std::string& value) {
  KvCommand c;
  c.op = KvCommand::Op::kSet;
  c.key = key;
  c.value = value;
  return c.encode();
}

ShardedClusterOptions fast_sharded(std::uint32_t n, std::uint32_t groups,
                                   std::uint64_t seed) {
  ShardedClusterOptions o;
  o.n = n;
  o.groups = groups;
  o.seed = seed;
  o.lan.cpu_send_ns = 5'000;
  o.lan.cpu_recv_ns = 5'000;
  o.lan.switch_latency_ns = 10'000;
  o.lan.jitter_ns = 40'000;
  return o;
}

ByteView key_view(const std::string& k) {
  return ByteView(reinterpret_cast<const std::uint8_t*>(k.data()), k.size());
}

TEST(Sharded, StableHashPartitionsEveryKeyToExactlyOneShard) {
  // Placement is protocol state: it must not depend on process, platform
  // or standard library. Same key => same shard, every shard reachable.
  std::set<ShardId> hit;
  for (int i = 0; i < 64; ++i) {
    const std::string k = "key:" + std::to_string(i);
    const ShardId s = shard_of_key(key_view(k), 8);
    EXPECT_LT(s, 8u);
    EXPECT_EQ(s, shard_of_key(key_view(k), 8));  // stable
    hit.insert(s);
  }
  EXPECT_EQ(hit.size(), 8u) << "64 keys should reach all 8 shards";
  EXPECT_EQ(shard_of_key(key_view("anything"), 1), 0u);
}

TEST(Sharded, ShardsConvergePartitionHoldsAndPerShardOrderIsLinearizable) {
  ShardedCluster c(fast_sharded(4, 4, 11));
  // 24 distinct keys submitted through rotating fronts.
  std::vector<std::string> keys;
  for (int i = 0; i < 24; ++i) keys.push_back("user:" + std::to_string(i));
  std::uint64_t seq = 0;
  for (const auto& k : keys) {
    c.submit(static_cast<ProcessId>(seq % 4), /*client=*/1, seq++,
             set_cmd(k, "v-" + k));
  }
  ASSERT_TRUE(
      c.run_until([&] { return c.all_applied_at_least(keys.size()); },
                  kDeadline));
  c.scheduler().run();  // quiesce the agreement tails

  // Per-shard replica consistency + the partition invariant: every key
  // lives in exactly the shard its hash names, at every process.
  for (GroupId g = 0; g < c.groups(); ++g) {
    for (ProcessId p = 0; p < c.n(); ++p) {
      EXPECT_EQ(c.service(p).snapshot(g), c.service(0).snapshot(g))
          << "shard " << g << " diverged at p" << p;
    }
  }
  for (const auto& k : keys) {
    const ShardId owner = shard_of_key(key_view(k), c.groups());
    for (GroupId g = 0; g < c.groups(); ++g) {
      const std::string snap = to_string(c.service(0).snapshot(g));
      EXPECT_EQ(snap.find(k + "=") != std::string::npos, g == owner)
          << "key " << k << " in shard " << g << ", owner " << owner;
    }
  }

  // The per-shard linearizability oracle: each group independently passes
  // the full AB safety set (total order, no-dup, no-creation, validity).
  const auto correct = c.correct_set();
  for (GroupId g = 0; g < c.groups(); ++g) {
    oracle::Report r;
    oracle::check_ab(r, correct, c.ab_log(g), c.ab_sent(g));
    EXPECT_TRUE(r.ok()) << "shard " << g << ":\n" << r.text();
  }
}

TEST(Sharded, WrongShardRequestIsForwardedNotDropped) {
  ShardedCluster c(fast_sharded(4, 4, 12));
  const Bytes cmd = set_cmd("routed-key", "val");
  const ShardId owner = c.service(0).shard_of(cmd);
  const ShardId wrong = (owner + 1) % c.groups();
  // A client that guessed the partition wrong: the front forwards to the
  // owner's group instead of rejecting.
  const ShardId decided = c.submit_via(/*via=*/1, wrong, 7, 1, cmd);
  EXPECT_EQ(decided, owner);
  EXPECT_EQ(c.service(1).forwarded(), 1u);
  // A correct guess is not counted.
  c.submit_via(/*via=*/1, owner, 7, 2, set_cmd("routed-key", "val2"));
  EXPECT_EQ(c.service(1).forwarded(), 1u);
  ASSERT_TRUE(c.run_until([&] { return c.all_applied_at_least(2); }, kDeadline));
  for (ProcessId p = 0; p < c.n(); ++p) {
    EXPECT_EQ(c.service(p).applied_count(owner), 2u);
    EXPECT_EQ(c.service(p).misrouted_dropped(), 0u);
    EXPECT_NE(to_string(c.service(p).snapshot(owner)).find("routed-key=val2"),
              std::string::npos);
  }
}

TEST(Sharded, ForeignGroupFrameIsCountedDropNeverThrow) {
  ShardedCluster c(fast_sharded(4, 2, 13));

  // A Byzantine peer stamps a group this process does not run. Through
  // the mux: routed nowhere, counted, no throw.
  Message alien;
  alien.group = 99;
  alien.path = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  alien.tag = 0;
  const Buffer alien_frame = alien.encode();
  EXPECT_NO_THROW(c.mux(0).on_packet(/*from=*/1, Slice(alien_frame)));
  EXPECT_EQ(c.mux(0).foreign_dropped(), 1u);

  // Bypassing the mux (a misconfigured direct feed): the stack itself
  // counts the foreign frame and survives.
  EXPECT_NO_THROW(c.stack(0, 0).on_packet(/*from=*/1, Slice(alien_frame)));
  EXPECT_EQ(c.stack(0, 0).metrics().foreign_group_dropped, 1u);

  // Cross-group replay: a frame group 1 really sent, replayed into group
  // 0's stack, is foreign there — the GroupId keeps groups inert to each
  // other even though they share channels and keys.
  Message other;
  other.group = 1;
  other.path = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  other.tag = 0;
  EXPECT_NO_THROW(c.stack(0, 0).on_packet(/*from=*/2, Slice(other.encode())));
  EXPECT_EQ(c.stack(0, 0).metrics().foreign_group_dropped, 2u);

  // Unreadable prefix at the mux: malformed, not foreign.
  EXPECT_NO_THROW(c.mux(0).on_packet(/*from=*/1, Slice(Bytes{2, 7})));
  EXPECT_EQ(c.mux(0).malformed_dropped(), 1u);

  // Liveness after the garbage: the legitimate workload still commits.
  c.submit(0, 1, 1, set_cmd("after", "ok"));
  ASSERT_TRUE(c.run_until([&] { return c.all_applied_at_least(1); }, kDeadline));
}

TEST(Sharded, MisroutedCommandIsCountedDropAtEveryReplica) {
  ShardedCluster c(fast_sharded(4, 4, 14));
  // A Byzantine replica broadcasts a well-formed command on the WRONG
  // group (the service-level twin of the foreign-group frame). Emulate
  // the delivery at one replica's service: the partition audit drops it
  // deterministically instead of letting the key leak into two shards.
  const Bytes cmd = set_cmd("leak-attempt", "evil");
  const ShardId owner = c.service(0).shard_of(cmd);
  const ShardId wrong = (owner + 1) % c.groups();
  const Bytes framed = smr::ExactlyOnceApplier::encode_command(66, 1, cmd);
  EXPECT_NO_THROW(c.service(2).on_delivered(wrong, framed));
  EXPECT_EQ(c.service(2).misrouted_dropped(), 1u);
  EXPECT_EQ(c.service(2).applied_count(wrong), 0u);
  EXPECT_EQ(to_string(c.service(2).snapshot(wrong)).find("leak-attempt"),
            std::string::npos);
  // Delivered on the owning shard, the same command applies normally.
  EXPECT_NO_THROW(c.service(2).on_delivered(owner, framed));
  EXPECT_EQ(c.service(2).applied_count(owner), 1u);
}

TEST(Sharded, ExactlyOnceAcrossFrontsAndShards) {
  ShardedCluster c(fast_sharded(4, 2, 15));
  const Bytes cmd = set_cmd("acct:1", "100");
  const ShardId owner = c.service(0).shard_of(cmd);
  // The same (client, seq) pushed through three different fronts.
  c.submit(0, 9, 1, cmd);
  c.submit(1, 9, 1, cmd);
  c.submit(3, 9, 1, cmd);
  ASSERT_TRUE(c.run_until([&] { return c.all_applied_at_least(1); }, kDeadline));
  c.scheduler().run();
  for (ProcessId p = 0; p < c.n(); ++p) {
    EXPECT_EQ(c.service(p).applied_count(owner), 1u) << "p" << p;
    EXPECT_EQ(c.service(p).duplicates_skipped(owner), 2u) << "p" << p;
  }
}

TEST(Sharded, PerShardRunsAreBitIdenticalAcrossSameSeedRuns) {
  // Same seed => bit-identical per-group traces AND identical per-shard
  // state, so the oracle/explorer machinery applies to each shard alone.
  auto run = [](std::uint64_t seed) {
    ShardedClusterOptions o = fast_sharded(4, 2, seed);
    o.trace = true;
    ShardedCluster c(o);
    std::uint64_t seq = 0;
    for (int i = 0; i < 8; ++i) {
      c.submit(static_cast<ProcessId>(i % 4), 1, seq++,
               set_cmd("k" + std::to_string(i), "v"));
    }
    c.run_until([&] { return c.all_applied_at_least(8); }, kDeadline);
    c.scheduler().run();
    std::vector<Bytes> traces;
    std::vector<Bytes> snaps;
    for (GroupId g = 0; g < c.groups(); ++g) {
      traces.push_back(c.group_trace_bytes(g));
      snaps.push_back(c.service(0).snapshot(g));
    }
    return std::make_pair(traces, snaps);
  };
  const auto [t1, s1] = run(77);
  const auto [t2, s2] = run(77);
  const auto [t3, s3] = run(78);
  for (GroupId g = 0; g < 2; ++g) {
    EXPECT_FALSE(t1[g].empty());
    EXPECT_EQ(t1[g], t2[g]) << "group " << g << " trace not reproducible";
  }
  EXPECT_EQ(s1, s2);
  EXPECT_NE(t1, t3) << "different seed should schedule differently";
}

TEST(Sharded, ConsistentUnderCrashFault) {
  ShardedClusterOptions o = fast_sharded(4, 2, 16);
  o.crashed = {3};
  ShardedCluster c(o);
  std::uint64_t seq = 0;
  for (int i = 0; i < 8; ++i) {
    c.submit(static_cast<ProcessId>(i % 3), 1, seq++,
             set_cmd("c" + std::to_string(i), "v"));
  }
  ASSERT_TRUE(c.run_until([&] { return c.all_applied_at_least(8); }, kDeadline));
  for (ProcessId p : c.correct_set()) {
    for (GroupId g = 0; g < c.groups(); ++g) {
      EXPECT_EQ(c.service(p).snapshot(g), c.service(0).snapshot(g));
    }
  }
}

TEST(Sharded, ConsistentUnderByzantineReplica) {
  ShardedClusterOptions o = fast_sharded(4, 2, 17);
  o.byzantine = {2};
  ShardedCluster c(o);
  std::uint64_t seq = 0;
  for (int i = 0; i < 8; ++i) {
    // Includes the attacker as a front: its stacks still forward.
    c.submit(static_cast<ProcessId>(i % 4), 1, seq++,
             set_cmd("b" + std::to_string(i), "v"));
  }
  ASSERT_TRUE(c.run_until([&] { return c.all_applied_at_least(8); }, kDeadline));
  const auto correct = c.correct_set();
  for (ProcessId p : correct) {
    for (GroupId g = 0; g < c.groups(); ++g) {
      EXPECT_EQ(c.service(p).snapshot(g), c.service(correct.front()).snapshot(g));
    }
  }
}

TEST(Sharded, PerGroupBatchingIsIndependentlyTunable) {
  ShardedClusterOptions o = fast_sharded(4, 2, 18);
  // Group 0 batches aggressively, group 1 runs the paper's unbatched wire
  // format — a hot shard and a cold one on the same mesh.
  AbBatchConfig batched;
  batched.enabled = true;
  batched.max_batch_msgs = 8;
  batched.max_batch_bytes = 4096;
  o.ab_batch_per_group = {batched, AbBatchConfig{}};
  ShardedCluster c(o);
  std::uint64_t seq = 0;
  for (int i = 0; i < 16; ++i) {
    c.submit(static_cast<ProcessId>(i % 4), 1, seq++,
             set_cmd("t" + std::to_string(i), "v"));
  }
  c.flush_all();
  ASSERT_TRUE(c.run_until([&] { return c.all_applied_at_least(16); }, kDeadline));
  c.scheduler().run();
  EXPECT_GT(c.group_metrics(0).ab_batches_sealed, 0u);
  EXPECT_EQ(c.group_metrics(1).ab_batches_sealed, 0u);
  for (ProcessId p = 0; p < c.n(); ++p) {
    for (GroupId g = 0; g < c.groups(); ++g) {
      EXPECT_EQ(c.service(p).snapshot(g), c.service(0).snapshot(g));
    }
  }
}

TEST(Sharded, SingleGroupMatchesPlainClusterSeedDerivation) {
  // G=1 is the degenerate deployment: group 0, legacy wire format, and
  // the same per-process seed derivation as the plain Cluster — so every
  // existing calibration stays valid for unsharded runs.
  ShardedCluster sc(fast_sharded(4, 1, 19));
  test::Cluster pc(test::fast_lan(4, 19));
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(sc.stack(p, 0).group(), 0u);
  }
  sc.submit(0, 1, 1, set_cmd("solo", "x"));
  ASSERT_TRUE(sc.run_until([&] { return sc.all_applied_at_least(1); },
                           kDeadline));
  EXPECT_EQ(to_string(sc.service(2).snapshot(0)), "solo=x;");
}

}  // namespace
}  // namespace ritas::sim
