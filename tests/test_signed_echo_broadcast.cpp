// The signature-based baseline primitive (Reiter's echo multicast):
// correctness of the real-RSA implementation, rejection of forgeries, and
// the modeled-CPU accounting that the comparison bench relies on.
#include "core/signed_echo_broadcast.h"

#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::DeliveryLog;
using test::fast_lan;
using test::kDeadline;

std::vector<std::shared_ptr<const RsaDirectory>> make_dirs(std::uint32_t n,
                                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<RsaKeyPair> keys;
  std::vector<RsaPublicKey> pubs;
  for (std::uint32_t p = 0; p < n; ++p) {
    keys.push_back(RsaKeyPair::generate(rng, 300));  // era-sized, fast
    pubs.push_back(keys.back().pub);
  }
  std::vector<std::shared_ptr<const RsaDirectory>> dirs;
  for (std::uint32_t p = 0; p < n; ++p) {
    auto d = std::make_shared<RsaDirectory>();
    d->pubs = pubs;
    d->self = keys[p];
    dirs.push_back(std::move(d));
  }
  return dirs;
}

InstanceId seb_root(std::uint64_t seq = 1) {
  return InstanceId::root(ProtocolType::kEchoBroadcast, seq);
}

TEST(SignedEchoBroadcast, DeliversWithRealSignatures) {
  Cluster c(fast_lan(4, 1));
  const auto dirs = make_dirs(4, 11);
  DeliveryLog log(4);
  std::vector<SignedEchoBroadcast*> eb(4, nullptr);
  for (ProcessId p : c.live()) {
    eb[p] = &c.create_root<SignedEchoBroadcast>(p, seb_root(), 0,
                                                Attribution::kPayload, dirs[p],
                                                SignatureCosts{}, log.sink(p));
  }
  c.call(0, [&] { eb[0]->bcast(to_bytes("signed hello")); });
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 1); }, kDeadline));
  for (ProcessId p : c.live()) {
    EXPECT_EQ(to_string(log.by_process[p][0]), "signed hello");
  }
}

TEST(SignedEchoBroadcast, ForgedInitRejected) {
  Cluster c(fast_lan(4, 2));
  const auto dirs = make_dirs(4, 12);
  DeliveryLog log(4);
  c.create_root<SignedEchoBroadcast>(1, seb_root(), 0, Attribution::kPayload,
                                     dirs[1], SignatureCosts{}, log.sink(1));
  // INIT claiming to be from p0 but signed with p3's key (or garbage).
  Writer w;
  w.bytes(to_bytes("forged"));
  w.bytes(rsa_sign(dirs[3]->self, to_bytes("forged")));
  Message m;
  m.path = seb_root();
  m.tag = SignedEchoBroadcast::kInit;
  m.payload = std::move(w).take();
  c.stack(1).on_packet(0, m.encode());
  c.run_all();
  EXPECT_TRUE(log.by_process[1].empty());
  EXPECT_GT(c.stack(1).metrics().invalid_dropped, 0u);
}

TEST(SignedEchoBroadcast, CommitWithTooFewSignaturesRejected) {
  Cluster c(fast_lan(4, 3));
  const auto dirs = make_dirs(4, 13);
  DeliveryLog log(4);
  c.create_root<SignedEchoBroadcast>(1, seb_root(), 0, Attribution::kPayload,
                                     dirs[1], SignatureCosts{}, log.sink(1));
  const Bytes msg = to_bytes("under-certified");
  // A commit with only ONE (valid!) echo signature: below (n+f)/2+1 = 3.
  Writer st;
  st.str("echo");
  const auto h = Sha256::hash(msg);
  st.raw(ByteView(h.data(), h.size()));
  Writer w;
  w.bytes(msg);
  w.u32(1);
  w.u32(2);
  w.bytes(rsa_sign(dirs[2]->self, st.data()));
  Message m;
  m.path = seb_root();
  m.tag = SignedEchoBroadcast::kCommit;
  m.payload = std::move(w).take();
  c.stack(1).on_packet(0, m.encode());
  c.run_all();
  EXPECT_TRUE(log.by_process[1].empty());
}

TEST(SignedEchoBroadcast, ModeledCpuCostsShowUpInLatency) {
  // The same broadcast with zero-cost vs era-cost signatures: the modeled
  // per-signature CPU must dominate the simulated latency difference.
  auto latency_with = [](SignatureCosts costs, std::uint64_t seed) {
    Cluster c(fast_lan(4, seed));
    const auto dirs = make_dirs(4, 14);
    DeliveryLog log(4);
    std::vector<SignedEchoBroadcast*> eb(4, nullptr);
    for (ProcessId p : c.live()) {
      eb[p] = &c.create_root<SignedEchoBroadcast>(
          p, seb_root(), 0, Attribution::kPayload, dirs[p], costs, log.sink(p));
    }
    c.call(0, [&] { eb[0]->bcast(to_bytes("m")); });
    c.run_until([&] { return log.everyone_has(c.live(), 1); }, kDeadline);
    return c.now();
  };
  const auto free_crypto = latency_with(SignatureCosts{0, 0}, 5);
  const auto era_crypto = latency_with(SignatureCosts{}, 5);
  // At least 2 signs + several verifies on the critical path: >= 8 ms.
  EXPECT_GT(era_crypto, free_crypto + 8 * sim::kMillisecond);
}

TEST(SignedEchoBroadcast, CrashedReceiverTolerated) {
  test::ClusterOptions o = fast_lan(4, 6);
  o.crashed = {2};
  Cluster c(o);
  const auto dirs = make_dirs(4, 15);
  DeliveryLog log(4);
  std::vector<SignedEchoBroadcast*> eb(4, nullptr);
  for (ProcessId p : c.live()) {
    eb[p] = &c.create_root<SignedEchoBroadcast>(p, seb_root(), 0,
                                                Attribution::kPayload, dirs[p],
                                                SignatureCosts{}, log.sink(p));
  }
  c.call(0, [&] { eb[0]->bcast(to_bytes("m")); });
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 1); }, kDeadline));
}

}  // namespace
}  // namespace ritas
