// State machine replication over the stack: exactly-once application,
// cross-replica consistency under every faultload, deterministic results.
#include "smr/replica.h"

#include <gtest/gtest.h>

#include <map>

#include "common/serialize.h"
#include "sim_helpers.h"

namespace ritas::smr {
namespace {

using test::Cluster;
using test::fast_lan;
using test::kDeadline;

/// Deterministic counter machine: "add <u64>" / "get".
class CounterMachine final : public StateMachine {
 public:
  Bytes apply(ByteView command) override {
    Reader r(command);
    const std::uint8_t op = r.u8();
    if (op == 0) {  // add
      value_ += r.u64();
    }
    if (!r.ok()) return to_bytes("err");
    Writer w;
    w.u64(value_);
    return std::move(w).take();
  }
  Bytes snapshot() const override {
    Writer w;
    w.u64(value_);
    return std::move(w).take();
  }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

Bytes add_cmd(std::uint64_t x) {
  Writer w;
  w.u8(0);
  w.u64(x);
  return std::move(w).take();
}

struct Fixture {
  std::vector<std::unique_ptr<CounterMachine>> machines;
  std::vector<std::unique_ptr<Replica>> replicas;

  Fixture(Cluster& c) {
    const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 7);
    machines.resize(c.n());
    replicas.resize(c.n());
    for (ProcessId p : c.live()) {
      machines[p] = std::make_unique<CounterMachine>();
      replicas[p] = std::make_unique<Replica>(c.stack(p), id, *machines[p]);
      c.stack(p).pump();
    }
  }
  bool all_applied(Cluster& c, std::uint64_t k) const {
    for (ProcessId p : c.correct_set()) {
      if (replicas[p]->applied_count() < k) return false;
    }
    return true;
  }
};

TEST(Smr, ReplicasConvergeToSameState) {
  Cluster c(fast_lan(4, 1));
  Fixture f(c);
  for (std::uint64_t i = 1; i <= 8; ++i) {
    const ProcessId via = static_cast<ProcessId>(i % 4);
    c.call(via, [&, i] { f.replicas[via]->submit(/*client=*/1, i, add_cmd(i)); });
  }
  ASSERT_TRUE(c.run_until([&] { return f.all_applied(c, 8); }, kDeadline));
  // 1+2+...+8 = 36, identical everywhere.
  for (ProcessId p : c.live()) {
    EXPECT_EQ(f.machines[p]->value(), 36u);
    EXPECT_EQ(f.machines[p]->snapshot(), f.machines[0]->snapshot());
  }
}

TEST(Smr, DuplicateSubmissionsApplyOnce) {
  Cluster c(fast_lan(4, 2));
  Fixture f(c);
  // The same request (client 9, seq 1) retried through THREE replicas.
  for (ProcessId via : {0u, 1u, 2u}) {
    c.call(via, [&, via] { f.replicas[via]->submit(9, 1, add_cmd(100)); });
  }
  ASSERT_TRUE(c.run_until([&] { return f.all_applied(c, 1); }, kDeadline));
  c.run_all();
  for (ProcessId p : c.live()) {
    EXPECT_EQ(f.machines[p]->value(), 100u) << "applied more than once at p" << p;
    EXPECT_EQ(f.replicas[p]->duplicates_skipped(), 2u);
  }
}

TEST(Smr, ResultsReportedToSubmittingReplica) {
  Cluster c(fast_lan(4, 3));
  Fixture f(c);
  std::map<std::uint64_t, std::uint64_t> results;  // seq -> counter value
  f.replicas[0]->set_on_applied(
      [&results](std::uint64_t, std::uint64_t seq, const Bytes& result) {
        Reader r(result);
        results[seq] = r.u64();
      });
  c.call(0, [&] {
    f.replicas[0]->submit(5, 1, add_cmd(10));
    f.replicas[0]->submit(5, 2, add_cmd(20));
  });
  ASSERT_TRUE(c.run_until([&] { return f.all_applied(c, 2); }, kDeadline));
  EXPECT_EQ(results[1], 10u);
  EXPECT_EQ(results[2], 30u);
}

TEST(Smr, ConsistentUnderByzantineReplica) {
  test::ClusterOptions o = fast_lan(4, 4);
  o.byzantine = {2};
  Cluster c(o);
  Fixture f(c);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    const ProcessId via = static_cast<ProcessId>(i % 4);  // includes the attacker
    c.call(via, [&, via, i] { f.replicas[via]->submit(1, i, add_cmd(i)); });
  }
  ASSERT_TRUE(c.run_until([&] { return f.all_applied(c, 6); }, kDeadline));
  for (ProcessId p : c.correct_set()) {
    EXPECT_EQ(f.machines[p]->value(), 21u);
  }
}

TEST(Smr, ConsistentUnderCrash) {
  test::ClusterOptions o = fast_lan(4, 5);
  o.crashed = {3};
  Cluster c(o);
  Fixture f(c);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    const ProcessId via = static_cast<ProcessId>(i % 3);
    c.call(via, [&, via, i] { f.replicas[via]->submit(1, i, add_cmd(1)); });
  }
  ASSERT_TRUE(c.run_until([&] { return f.all_applied(c, 6); }, kDeadline));
  for (ProcessId p : c.correct_set()) {
    EXPECT_EQ(f.machines[p]->value(), 6u);
  }
}

TEST(Smr, JunkOperationHandledDeterministically) {
  Cluster c(fast_lan(4, 6));
  Fixture f(c);
  // A buggy or Byzantine client submits an operation the machine cannot
  // parse; every replica applies the same deterministic "err" no-op and
  // states stay equal.
  c.call(1, [&] { f.replicas[1]->submit(4, 1, to_bytes("junk-op")); });
  c.call(0, [&] { f.replicas[0]->submit(4, 2, add_cmd(5)); });
  ASSERT_TRUE(c.run_until([&] { return f.all_applied(c, 2); }, kDeadline));
  for (ProcessId p : c.live()) {
    EXPECT_EQ(f.machines[p]->value(), 5u);
    EXPECT_EQ(f.machines[p]->snapshot(), f.machines[0]->snapshot());
  }
}

TEST(Smr, InterleavedClientsKeepPerClientExactlyOnce) {
  Cluster c(fast_lan(4, 7));
  Fixture f(c);
  // Three clients, interleaved seqs, some duplicated through two replicas.
  for (std::uint64_t client : {10u, 20u, 30u}) {
    for (std::uint64_t seq = 1; seq <= 4; ++seq) {
      const ProcessId via = static_cast<ProcessId>((client + seq) % 4);
      c.call(via, [&, via, client, seq] {
        f.replicas[via]->submit(client, seq, add_cmd(client + seq));
      });
      if (seq % 2 == 0) {  // duplicate the even ones elsewhere
        const ProcessId via2 = static_cast<ProcessId>((via + 1) % 4);
        c.call(via2, [&, via2, client, seq] {
          f.replicas[via2]->submit(client, seq, add_cmd(client + seq));
        });
      }
    }
  }
  // 12 unique commands; sum = sum over clients of (4*client + 10).
  const std::uint64_t expected = (4 * 10 + 10) + (4 * 20 + 10) + (4 * 30 + 10);
  ASSERT_TRUE(c.run_until([&] { return f.all_applied(c, 12); }, kDeadline));
  c.run_all();
  for (ProcessId p : c.live()) {
    EXPECT_EQ(f.machines[p]->value(), expected);
    EXPECT_EQ(f.replicas[p]->applied_count(), 12u);
  }
}

}  // namespace
}  // namespace ritas::smr
