// Soak: a long-lived atomic broadcast session under continuous mixed-size
// traffic, Byzantine attack and schedule jitter. Verifies what short tests
// cannot: instance-count and out-of-context boundedness (garbage
// collection actually keeps up), sustained total order, and the §4.3
// claims holding over thousands of messages.
#include <gtest/gtest.h>

#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::fast_lan;
using test::kDeadline;

TEST(Soak, LongMixedSessionStaysBoundedAndOrdered) {
  test::ClusterOptions o = fast_lan(4, 424242);
  o.byzantine = {3};
  o.lan.jitter_ns = 150'000;
  Cluster c(o);

  std::vector<AtomicBroadcast*> ab(4, nullptr);
  std::vector<std::vector<std::pair<ProcessId, std::uint64_t>>> order(4);
  const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  for (ProcessId p : c.live()) {
    ab[p] = &c.create_root<AtomicBroadcast>(
        p, id, [&order, p](ProcessId origin, std::uint64_t rbid, Slice) {
          order[p].emplace_back(origin, rbid);
        });
  }

  // 25 waves x 4 senders x 20 messages = 2000 messages, sizes cycling
  // 10 B / 100 B / 1 KB, each wave starting only after the previous one
  // fully delivered (a sustained session, not one mega-burst).
  const std::size_t kWaves = 25, kPerSender = 20;
  std::size_t expected = 0;
  std::size_t peak_instances = 0;
  for (std::size_t wave = 0; wave < kWaves; ++wave) {
    for (ProcessId p : c.live()) {
      c.call(p, [&, p, wave] {
        for (std::size_t i = 0; i < kPerSender; ++i) {
          const std::size_t size = (wave + i) % 3 == 0   ? 10
                                   : (wave + i) % 3 == 1 ? 100
                                                         : 1000;
          ab[p]->bcast(Bytes(size, static_cast<std::uint8_t>(wave)));
        }
      });
    }
    expected += 4 * kPerSender;
    ASSERT_TRUE(c.run_until(
        [&] {
          for (ProcessId p : c.correct_set()) {
            if (order[p].size() < expected) return false;
          }
          return true;
        },
        kDeadline))
        << "wave " << wave;
    peak_instances = std::max(peak_instances, c.stack(0).instance_count());
  }
  c.run_all();

  // Total order over the whole session.
  for (ProcessId p : c.correct_set()) {
    const std::size_t k = std::min(order[p].size(), order[0].size());
    ASSERT_GE(k, expected);
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_EQ(order[p][i], order[0][i]) << "diverged at " << i;
    }
  }

  // Boundedness: after 2000 delivered messages the per-process instance
  // tree must be a small multiple of one wave's working set, not O(total).
  // (Without GC this would be > 2000 message RBs alone.)
  EXPECT_LT(c.stack(0).instance_count(), 900u)
      << "instance tree grew with session length";
  EXPECT_LT(peak_instances, 3000u);
  EXPECT_LE(c.stack(0).ooc_size(), c.stack(0).config().ooc_per_sender * 4);

  // §4.3 over the long haul (correct processes only). The paper's "never
  // decided ⊥" was an observation on a quiet symmetric LAN; under our
  // deliberately jittered continuous load a rare default decision is
  // legitimate (the atomic broadcast just runs another round), so require
  // defaults to be rare rather than absent.
  for (ProcessId p : c.correct_set()) {
    const Metrics& m = c.stack(p).metrics();
    EXPECT_EQ(m.bc_rounds_total, m.bc_decided) << "p" << p;
    const std::uint64_t decisions = m.mvc_decided_value + m.mvc_decided_default;
    ASSERT_GT(decisions, 0u);
    EXPECT_LT(static_cast<double>(m.mvc_decided_default) /
                  static_cast<double>(decisions),
              0.10)
        << "p" << p;
  }
}

TEST(Soak, RepeatedConsensusInstancesDoNotLeakOoc) {
  // 200 sequential binary consensus instances on one cluster; the
  // out-of-context table must return to (near) empty between instances.
  Cluster c(fast_lan(4, 515151));
  for (std::uint64_t k = 1; k <= 200; ++k) {
    test::Capture<bool> cap(4);
    std::vector<BcAlgorithm*> inst(4, nullptr);
    const InstanceId id = InstanceId::root(ProtocolType::kBinaryConsensus, k);
    for (ProcessId p : c.live()) {
      inst[p] = &c.create_bc(p, id, Attribution::kAgreement,
                                                cap.sink(p));
    }
    for (ProcessId p : c.live()) {
      c.call(p, [&, p] { inst[p]->propose(k % 2 == 0); });
    }
    ASSERT_TRUE(
        c.run_until([&] { return cap.all_set(c.correct_set()); }, kDeadline))
        << "instance " << k;
    EXPECT_EQ(*cap.got[0], k % 2 == 0);
    c.run_all();
    for (ProcessId p : c.live()) c.destroy_roots(p);
    EXPECT_EQ(c.stack(0).instance_count(), 0u);
  }
  EXPECT_EQ(c.stack(0).ooc_size(), 0u);
}

}  // namespace
}  // namespace ritas
