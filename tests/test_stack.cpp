// ProtocolStack unit tests: demultiplexing, spawn-on-demand, the
// out-of-context table (store/drain/evict/purge), and defensive drops.
#include "core/stack.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/message.h"

namespace ritas {
namespace {

struct SentFrame {
  ProcessId to;
  Slice frame;
};

class FakeTransport final : public Transport {
 public:
  void send(ProcessId to, Slice frame) override {
    sent.push_back(SentFrame{to, std::move(frame)});
  }
  std::vector<SentFrame> sent;
};

struct Rx {
  InstanceId path;
  ProcessId from;
  std::uint8_t tag;
  Bytes payload;
};

/// Test protocol: records inbound messages; can spawn children on demand.
class Probe final : public Protocol {
 public:
  Probe(ProtocolStack& stack, Protocol* parent, InstanceId id,
        std::vector<Rx>* log, bool spawnable = false, bool tombstone = false)
      : Protocol(stack, parent, std::move(id)),
        log_(log),
        spawnable_(spawnable),
        tombstone_(tombstone) {}

  void on_message(ProcessId from, std::uint8_t tag, const Slice& payload) override {
    log_->push_back(Rx{id(), from, tag, payload.to_bytes()});
  }

  Protocol* spawn_child(const Component& c, bool& drop) override {
    drop = tombstone_;
    if (!spawnable_ || tombstone_) return nullptr;
    auto child = std::make_unique<Probe>(stack_, this, id().child(c), log_,
                                         spawnable_, tombstone_);
    return &add_child(std::move(child));
  }

  void set_spawnable(bool s) { spawnable_ = s; }

  using Protocol::broadcast;
  using Protocol::destroy_child;
  using Protocol::send;

 private:
  std::vector<Rx>* log_;
  bool spawnable_;
  bool tombstone_;
};

class StackTest : public ::testing::Test {
 protected:
  StackTest()
      : keys_(KeyChain::deal(to_bytes("k"), 4, 0)), stack_(make_config(), transport_, keys_, 7) {}

  static StackConfig make_config() {
    StackConfig cfg;
    cfg.n = 4;
    cfg.self = 0;
    cfg.ooc_per_sender = 4;  // small quota so eviction is testable
    return cfg;
  }

  Buffer frame_for(const InstanceId& path, std::uint8_t tag, Bytes payload) {
    Message m;
    m.path = path;
    m.tag = tag;
    m.payload = std::move(payload);
    return m.encode();
  }

  FakeTransport transport_;
  KeyChain keys_;
  ProtocolStack stack_;
  std::vector<Rx> log_;
};

TEST_F(StackTest, DispatchToRegisteredInstance) {
  const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
  Probe probe(stack_, nullptr, id, &log_);
  stack_.on_packet(2, frame_for(id, 5, to_bytes("x")));
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].from, 2u);
  EXPECT_EQ(log_[0].tag, 5);
  EXPECT_EQ(to_string(log_[0].payload), "x");
}

TEST_F(StackTest, MalformedFrameDropped) {
  stack_.on_packet(1, to_bytes("garbage"));
  EXPECT_EQ(stack_.metrics().malformed_dropped, 1u);
  EXPECT_TRUE(log_.empty());
}

TEST_F(StackTest, FrameFromSelfOrOutOfRangeDropped) {
  const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
  Probe probe(stack_, nullptr, id, &log_);
  stack_.on_packet(0, frame_for(id, 0, {}));  // from == self: impossible
  stack_.on_packet(9, frame_for(id, 0, {}));  // out of range
  EXPECT_EQ(stack_.metrics().malformed_dropped, 2u);
  EXPECT_TRUE(log_.empty());
}

TEST_F(StackTest, DuplicateRegistrationThrows) {
  const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
  Probe probe(stack_, nullptr, id, &log_);
  EXPECT_THROW(Probe(stack_, nullptr, id, &log_), std::logic_error);
}

TEST_F(StackTest, OocStoredThenDrainedOnRegistration) {
  const InstanceId id = InstanceId::root(ProtocolType::kEchoBroadcast, 9);
  stack_.on_packet(1, frame_for(id, 2, to_bytes("early")));
  EXPECT_EQ(stack_.metrics().ooc_stored, 1u);
  EXPECT_EQ(stack_.ooc_size(), 1u);
  EXPECT_TRUE(log_.empty());

  Probe probe(stack_, nullptr, id, &log_);
  stack_.pump();
  EXPECT_EQ(stack_.metrics().ooc_drained, 1u);
  EXPECT_EQ(stack_.ooc_size(), 0u);
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(to_string(log_[0].payload), "early");
}

TEST_F(StackTest, OocPerSenderQuotaEvictsOldest) {
  // Sender 1 floods 6 messages; quota is 4 => the 2 oldest evicted.
  for (int i = 0; i < 6; ++i) {
    const auto id = InstanceId::root(ProtocolType::kReliableBroadcast,
                                     static_cast<std::uint64_t>(100 + i));
    stack_.on_packet(1, frame_for(id, 0, Bytes{static_cast<std::uint8_t>(i)}));
  }
  EXPECT_EQ(stack_.metrics().ooc_evicted, 2u);
  EXPECT_EQ(stack_.ooc_size(), 4u);
}

TEST_F(StackTest, OocQuotaIsPerSender) {
  // A flooding sender must not evict another sender's parked messages.
  const auto honest = InstanceId::root(ProtocolType::kReliableBroadcast, 50);
  stack_.on_packet(2, frame_for(honest, 1, to_bytes("honest")));
  for (int i = 0; i < 20; ++i) {
    const auto id = InstanceId::root(ProtocolType::kReliableBroadcast,
                                     static_cast<std::uint64_t>(1000 + i));
    stack_.on_packet(1, frame_for(id, 0, {}));
  }
  Probe probe(stack_, nullptr, honest, &log_);
  stack_.pump();
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(to_string(log_[0].payload), "honest");
}

TEST_F(StackTest, OocPurgedOnInstanceDestruction) {
  const InstanceId root = InstanceId::root(ProtocolType::kAtomicBroadcast, 1);
  const InstanceId childpath = root.child({ProtocolType::kReliableBroadcast, 3});
  {
    Probe probe(stack_, nullptr, root, &log_);  // not spawnable
    stack_.on_packet(1, frame_for(childpath, 0, {}));
    EXPECT_EQ(stack_.ooc_size(), 1u);
  }  // destroying the root purges the subtree's parked messages
  EXPECT_EQ(stack_.ooc_size(), 0u);
}

TEST_F(StackTest, SpawnOnDemandWalksDownThePath) {
  const InstanceId root = InstanceId::root(ProtocolType::kAtomicBroadcast, 1);
  Probe probe(stack_, nullptr, root, &log_, /*spawnable=*/true);
  const InstanceId deep = root.child({ProtocolType::kMultiValuedConsensus, 0})
                              .child({ProtocolType::kBinaryConsensus, 0})
                              .child({ProtocolType::kReliableBroadcast, 7});
  stack_.on_packet(3, frame_for(deep, 1, to_bytes("deep")));
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].path, deep);
  EXPECT_TRUE(stack_.has_instance(deep));
  EXPECT_TRUE(stack_.has_instance(deep.parent()));
}

TEST_F(StackTest, TombstoneDropsPermanently) {
  const InstanceId root = InstanceId::root(ProtocolType::kAtomicBroadcast, 1);
  Probe probe(stack_, nullptr, root, &log_, /*spawnable=*/false, /*tombstone=*/true);
  const InstanceId dead = root.child({ProtocolType::kReliableBroadcast, 1});
  stack_.on_packet(1, frame_for(dead, 0, {}));
  EXPECT_EQ(stack_.metrics().unroutable_dropped, 1u);
  EXPECT_EQ(stack_.ooc_size(), 0u);
}

TEST_F(StackTest, SelfMessagesLoopWithoutTransport) {
  const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
  Probe probe(stack_, nullptr, id, &log_);
  probe.send(0, 9, to_bytes("loop"));
  stack_.pump();
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].from, 0u);
  EXPECT_TRUE(transport_.sent.empty());
}

TEST_F(StackTest, BroadcastReachesAllPeersAndSelf) {
  const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
  Probe probe(stack_, nullptr, id, &log_);
  probe.broadcast(1, to_bytes("all"));
  stack_.pump();
  EXPECT_EQ(transport_.sent.size(), 3u);  // peers 1..3
  ASSERT_EQ(log_.size(), 1u);             // self loopback
  EXPECT_EQ(stack_.metrics().msgs_sent, 3u);
}

TEST_F(StackTest, RegisteringAncestorDrainsDescendantOoc) {
  // Messages arriving before the application creates the root must be
  // parked and then routed (via spawn-on-demand) once the root appears.
  const InstanceId root = InstanceId::root(ProtocolType::kAtomicBroadcast, 1);
  const InstanceId child = root.child({ProtocolType::kReliableBroadcast, 5});
  stack_.on_packet(1, frame_for(child, 0, to_bytes("parked")));  // no root yet
  EXPECT_EQ(stack_.ooc_size(), 1u);
  Probe probe(stack_, nullptr, root, &log_, /*spawnable=*/true);
  stack_.pump();
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(to_string(log_[0].payload), "parked");
  EXPECT_TRUE(stack_.has_instance(child));
}

TEST_F(StackTest, RetryOocRedispatchesAfterWindowAdvance) {
  // A parent that refuses a spawn (flow-control window) parks the message;
  // when the window advances it calls retry_ooc and the message flows.
  const InstanceId root = InstanceId::root(ProtocolType::kAtomicBroadcast, 1);
  Probe probe(stack_, nullptr, root, &log_, /*spawnable=*/false);
  const InstanceId child = root.child({ProtocolType::kReliableBroadcast, 5});
  stack_.on_packet(1, frame_for(child, 0, to_bytes("parked")));
  EXPECT_EQ(stack_.ooc_size(), 1u);
  EXPECT_TRUE(log_.empty());
  probe.set_spawnable(true);  // "window advanced"
  stack_.retry_ooc(root);
  stack_.pump();
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(to_string(log_[0].payload), "parked");
}

TEST_F(StackTest, InstanceCountTracksTree) {
  const InstanceId root = InstanceId::root(ProtocolType::kAtomicBroadcast, 1);
  EXPECT_EQ(stack_.instance_count(), 0u);
  {
    Probe probe(stack_, nullptr, root, &log_, true);
    const InstanceId deep = root.child({ProtocolType::kBinaryConsensus, 0})
                                .child({ProtocolType::kReliableBroadcast, 1});
    stack_.on_packet(1, frame_for(deep, 0, {}));
    EXPECT_EQ(stack_.instance_count(), 3u);
  }
  EXPECT_EQ(stack_.instance_count(), 0u);
}

TEST_F(StackTest, BroadcastEncodesExactlyOneSharedFrame) {
  // Encode-once fan-out: one broadcast = one Message::encode, and all n-1
  // transport sends alias the SAME refcounted frame (no per-peer copies).
  const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
  Probe probe(stack_, nullptr, id, &log_);
  const std::uint64_t broadcasts = 5;
  for (std::uint64_t i = 0; i < broadcasts; ++i) {
    probe.broadcast(1, to_bytes("payload"));
    stack_.pump();
  }
  EXPECT_EQ(stack_.metrics().frames_encoded, broadcasts);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(stack_.metrics().frames_encoded) / broadcasts, 1.0);
  ASSERT_EQ(transport_.sent.size(), 3 * broadcasts);
  // The 3 frames of each broadcast share one underlying buffer.
  for (std::uint64_t i = 0; i < broadcasts; ++i) {
    const std::uint8_t* base = transport_.sent[3 * i].frame.data();
    EXPECT_EQ(transport_.sent[3 * i + 1].frame.data(), base);
    EXPECT_EQ(transport_.sent[3 * i + 2].frame.data(), base);
  }
}

TEST_F(StackTest, UnicastEncodesOneFrame) {
  const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
  Probe probe(stack_, nullptr, id, &log_);
  probe.send(2, 4, to_bytes("one"));
  stack_.pump();
  EXPECT_EQ(stack_.metrics().frames_encoded, 1u);
  EXPECT_EQ(transport_.sent.size(), 1u);
}

TEST_F(StackTest, ReceivedPayloadAliasesArrivalFrame) {
  // Zero-copy decode: the payload slice handed to the protocol points into
  // the arrival frame, and the aliased-bytes counter advances while the
  // copied-bytes counter stays 0.
  const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
  class AliasProbe final : public Protocol {
   public:
    AliasProbe(ProtocolStack& s, InstanceId id) : Protocol(s, nullptr, std::move(id)) {}
    void on_message(ProcessId, std::uint8_t, const Slice& payload) override {
      seen = payload;  // retain the slice; must stay valid via refcount
    }
    Slice seen;
  } probe(stack_, id);
  Buffer frame = frame_for(id, 3, to_bytes("aliased-bytes"));
  const std::uint8_t* frame_base = frame.data();
  const std::size_t frame_size = frame.size();
  stack_.on_packet(1, std::move(frame));
  ASSERT_EQ(probe.seen.size(), 13u);
  // The slice's data lies inside the arrival frame's allocation.
  EXPECT_GE(probe.seen.data(), frame_base);
  EXPECT_LE(probe.seen.data() + probe.seen.size(), frame_base + frame_size);
  EXPECT_EQ(stack_.metrics().payload_bytes_aliased, 13u);
  EXPECT_EQ(stack_.metrics().payload_bytes_copied, 0u);
}

TEST_F(StackTest, OocQuotaZeroDropsEverythingWithoutUnderflow) {
  // ooc_per_sender = 0: nothing may ever be parked, nothing may be
  // evicted (there is nothing to evict), and repeated floods must not
  // underflow the per-sender counters or throw.
  StackConfig cfg = make_config();
  cfg.ooc_per_sender = 0;
  FakeTransport t;
  ProtocolStack s(cfg, t, keys_, 7);
  for (int i = 0; i < 50; ++i) {
    const auto id = InstanceId::root(ProtocolType::kReliableBroadcast,
                                     static_cast<std::uint64_t>(100 + i));
    s.on_packet(1 + static_cast<ProcessId>(i % 3),
                frame_for(id, 0, Bytes{static_cast<std::uint8_t>(i)}));
  }
  EXPECT_EQ(s.ooc_size(), 0u);
  EXPECT_EQ(s.metrics().ooc_stored, 0u);
  EXPECT_EQ(s.metrics().ooc_evicted, 0u);
  EXPECT_EQ(s.metrics().ooc_drained, 0u);
  // Registering the instance later finds nothing parked — quota 0 means
  // the early messages are simply gone.
  std::vector<Rx> log;
  const auto id = InstanceId::root(ProtocolType::kReliableBroadcast, 100);
  Probe probe(s, nullptr, id, &log);
  s.pump();
  EXPECT_TRUE(log.empty());
}

TEST_F(StackTest, RejectsBadConfig) {
  StackConfig bad;
  bad.n = 3;  // below 3f+1 with f=1
  bad.self = 0;
  EXPECT_THROW(ProtocolStack(bad, transport_, keys_, 1), std::invalid_argument);
  StackConfig bad2;
  bad2.n = 4;
  bad2.self = 4;
  EXPECT_THROW(ProtocolStack(bad2, transport_, keys_, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ritas
