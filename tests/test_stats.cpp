#include "common/stats.h"

#include <gtest/gtest.h>

namespace ritas {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStats, NegativeValues) {
  OnlineStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 18.0);
  EXPECT_EQ(s.min(), -3.0);
}

TEST(Sample, MeanAndStddev) {
  Sample s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), 1.2909944487, 1e-9);
}

TEST(Sample, Percentiles) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_EQ(s.percentile(50), 50.0);
  EXPECT_EQ(s.percentile(90), 90.0);
  EXPECT_EQ(s.percentile(100), 100.0);
  EXPECT_EQ(s.percentile(0), 1.0);
  EXPECT_EQ(s.median(), 50.0);
}

TEST(Sample, PercentileAfterLateAdd) {
  Sample s;
  s.add(10.0);
  EXPECT_EQ(s.median(), 10.0);
  s.add(20.0);
  s.add(0.0);
  EXPECT_EQ(s.median(), 10.0);  // sorted cache must invalidate
  EXPECT_EQ(s.max(), 20.0);
}

TEST(Sample, EmptyPercentileThrows) {
  Sample s;
  EXPECT_THROW(s.percentile(50), std::logic_error);
}

TEST(Sample, MatchesOnlineStats) {
  Sample sample;
  OnlineStats online;
  double x = 0.1;
  for (int i = 0; i < 500; ++i) {
    x = x * 1.07 + static_cast<double>(i % 13);
    sample.add(x);
    online.add(x);
  }
  EXPECT_NEAR(sample.mean(), online.mean(), 1e-6 * std::abs(online.mean()));
  EXPECT_NEAR(sample.stddev(), online.stddev(), 1e-6 * online.stddev());
}

}  // namespace
}  // namespace ritas
