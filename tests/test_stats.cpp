#include "common/stats.h"

#include <gtest/gtest.h>

namespace ritas {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStats, NegativeValues) {
  OnlineStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 18.0);
  EXPECT_EQ(s.min(), -3.0);
}

TEST(Sample, MeanAndStddev) {
  Sample s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), 1.2909944487, 1e-9);
}

TEST(Sample, Percentiles) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_EQ(s.percentile(50), 50.0);
  EXPECT_EQ(s.percentile(90), 90.0);
  EXPECT_EQ(s.percentile(100), 100.0);
  EXPECT_EQ(s.percentile(0), 1.0);
  EXPECT_EQ(s.median(), 50.0);
}

TEST(Sample, PercentileAfterLateAdd) {
  Sample s;
  s.add(10.0);
  EXPECT_EQ(s.median(), 10.0);
  s.add(20.0);
  s.add(0.0);
  EXPECT_EQ(s.median(), 10.0);  // sorted cache must invalidate
  EXPECT_EQ(s.max(), 20.0);
}

TEST(Sample, EmptyPercentileThrows) {
  Sample s;
  EXPECT_THROW(s.percentile(50), std::logic_error);
}

TEST(Sample, MatchesOnlineStats) {
  Sample sample;
  OnlineStats online;
  double x = 0.1;
  for (int i = 0; i < 500; ++i) {
    x = x * 1.07 + static_cast<double>(i % 13);
    sample.add(x);
    online.add(x);
  }
  EXPECT_NEAR(sample.mean(), online.mean(), 1e-6 * std::abs(online.mean()));
  EXPECT_NEAR(sample.stddev(), online.stddev(), 1e-6 * online.stddev());
}


TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, PowerOfTwoBucketing) {
  Histogram h;
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 1000ull}) h.add(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.total(), 1010u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.buckets()[0], 1u);  // {0}
  EXPECT_EQ(h.buckets()[1], 1u);  // {1}
  EXPECT_EQ(h.buckets()[2], 2u);  // {2,3}
  EXPECT_EQ(h.buckets()[3], 1u);  // {4..7}
  EXPECT_EQ(h.buckets()[10], 1u); // {512..1023}
  EXPECT_EQ(Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(Histogram::bucket_floor(10), 512u);
}

TEST(Histogram, PercentileBounds) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.add(10);    // bucket 4 (8..15)
  for (int i = 0; i < 10; ++i) h.add(5000);  // bucket 13 (4096..8191)
  // Sparse buckets (one distinct value) are exact, not rounded to the
  // power-of-two bucket ceiling.
  EXPECT_EQ(h.percentile_bound(50), 10u);
  EXPECT_EQ(h.percentile_bound(100), 5000u);
  EXPECT_EQ(h.p50(), 10u);
  EXPECT_EQ(h.p99(), 5000u);
  Histogram empty;
  EXPECT_EQ(empty.percentile_bound(99), 0u);
  EXPECT_EQ(empty.p999(), 0u);
}

TEST(Histogram, SparseTailIsExactNeverBelowMax) {
  // 998 fast ops plus one slow outlier (rank 999 of 999 = p99.9): the tail
  // percentile must report the outlier exactly, never a value interpolated
  // below the observed max.
  Histogram h;
  for (int i = 0; i < 998; ++i) h.add(100);
  h.add(777'777);
  EXPECT_EQ(h.p50(), 100u);
  EXPECT_EQ(h.p99(), 100u);
  EXPECT_EQ(h.p999(), 777'777u);
  EXPECT_EQ(h.p999(), h.max());
}

TEST(Histogram, MixedBucketRoundsUpWithinBucket) {
  // Two distinct values share bucket 4 (8..15); the p50 rank lands on the
  // smaller one but the bound may only round UP within the bucket.
  Histogram h;
  h.add(9);
  h.add(9);
  h.add(14);
  EXPECT_EQ(h.percentile_bound(50), 14u);  // bucket max, >= true rank value 9
  EXPECT_LE(h.percentile_bound(50), h.max());
}

TEST(Histogram, PercentileSurvivesMerge) {
  Histogram a, b;
  for (int i = 0; i < 500; ++i) a.add(40);
  for (int i = 0; i < 498; ++i) b.add(50);
  b.add(1'000'000);
  a += b;
  EXPECT_EQ(a.count(), 999u);
  EXPECT_EQ(a.p50(), 50u);   // rank 500 falls in bucket 6 whose max is 50
  EXPECT_EQ(a.p999(), 1'000'000u);  // rank 999 of 999 is the outlier
  // Merging an empty histogram is a no-op for percentiles.
  Histogram empty;
  a += empty;
  EXPECT_EQ(a.p50(), 50u);
  EXPECT_EQ(a.p999(), 1'000'000u);
}

TEST(Histogram, MergePreservesMoments) {
  Histogram a, b;
  a.add(3);
  a.add(100);
  b.add(7);
  a += b;
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.total(), 110u);
  EXPECT_EQ(a.min(), 3u);
  EXPECT_EQ(a.max(), 100u);
  EXPECT_EQ(a.buckets()[2] + a.buckets()[3], 2u);  // 3 and 7
}

}  // namespace
}  // namespace ritas
