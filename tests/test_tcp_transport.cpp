// Real-socket transport tests: mesh setup, framing, HMAC integrity,
// anti-replay counters, oversize protection, concurrent traffic.
#include "net/tcp_transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "common/serialize.h"
#include "net_helpers.h"

namespace ritas::net {
namespace {

using test::free_ports;
using test::local_peers;

struct Node {
  std::unique_ptr<KeyChain> keys;
  std::unique_ptr<TcpTransport> transport;
  std::thread thread;
  std::mutex mutex;
  std::vector<std::pair<ProcessId, Bytes>> received;
  std::atomic<bool> stop{false};

  void run() {
    while (!stop.load()) transport->poll_once(20);
  }
  std::size_t count() {
    std::lock_guard<std::mutex> lock(mutex);
    return received.size();
  }
};

/// Spins up an n-node mesh on localhost; each node polls in its own thread.
class Mesh {
 public:
  explicit Mesh(std::uint32_t n, bool authenticate = true,
                const Bytes& master = to_bytes("mesh-master")) {
    const auto ports = free_ports(n);
    const auto peers = local_peers(ports);
    nodes_.resize(n);
    std::vector<std::thread> starters;
    for (std::uint32_t p = 0; p < n; ++p) {
      auto& node = nodes_[p];
      node = std::make_unique<Node>();
      node->keys = std::make_unique<KeyChain>(KeyChain::deal(master, n, p));
      TcpTransport::Options o;
      o.n = n;
      o.self = p;
      o.peers = peers;
      o.authenticate = authenticate;
      node->transport = std::make_unique<TcpTransport>(o, *node->keys);
      Node* raw = node.get();
      raw->transport->set_sink([raw](ProcessId from, Slice frame) {
        std::lock_guard<std::mutex> lock(raw->mutex);
        raw->received.emplace_back(from, frame.to_bytes());
      });
    }
    // start() blocks until the mesh is up, so all nodes start concurrently.
    for (auto& node : nodes_) {
      starters.emplace_back([&node] { node->transport->start(); });
    }
    for (auto& t : starters) t.join();
    for (auto& node : nodes_) {
      node->thread = std::thread([raw = node.get()] { raw->run(); });
    }
  }

  ~Mesh() {
    for (auto& node : nodes_) {
      node->stop.store(true);
      node->transport->wakeup();
    }
    for (auto& node : nodes_) {
      if (node->thread.joinable()) node->thread.join();
      node->transport->stop();
    }
  }

  Node& node(std::uint32_t p) { return *nodes_[p]; }

  bool wait_for(std::uint32_t p, std::size_t count, int timeout_ms = 5000) {
    for (int waited = 0; waited < timeout_ms; waited += 5) {
      if (node(p).count() >= count) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return node(p).count() >= count;
  }

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST(TcpTransport, MeshDeliversFrames) {
  Mesh mesh(4);
  mesh.node(0).transport->send(1, to_bytes("zero to one"));
  mesh.node(3).transport->send(1, to_bytes("three to one"));
  ASSERT_TRUE(mesh.wait_for(1, 2));
  std::lock_guard<std::mutex> lock(mesh.node(1).mutex);
  std::set<std::string> got;
  for (auto& [from, frame] : mesh.node(1).received) {
    got.insert(to_string(frame));
  }
  EXPECT_TRUE(got.contains("zero to one"));
  EXPECT_TRUE(got.contains("three to one"));
}

TEST(TcpTransport, FifoPerPair) {
  Mesh mesh(4);
  for (int i = 0; i < 200; ++i) {
    mesh.node(2).transport->send(0, Bytes{static_cast<std::uint8_t>(i)});
  }
  ASSERT_TRUE(mesh.wait_for(0, 200));
  std::lock_guard<std::mutex> lock(mesh.node(0).mutex);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(mesh.node(0).received[static_cast<std::size_t>(i)].second[0], i);
  }
}

TEST(TcpTransport, LargeFrames) {
  Mesh mesh(4);
  const Bytes big(2 * 1024 * 1024, 0xab);
  mesh.node(0).transport->send(2, Bytes(big));
  ASSERT_TRUE(mesh.wait_for(2, 1, 15000));
  std::lock_guard<std::mutex> lock(mesh.node(2).mutex);
  EXPECT_EQ(mesh.node(2).received[0].second, big);
}

TEST(TcpTransport, WorksWithoutAuthentication) {
  Mesh mesh(4, /*authenticate=*/false);
  mesh.node(1).transport->send(0, to_bytes("plain"));
  ASSERT_TRUE(mesh.wait_for(0, 1));
}

TEST(TcpTransport, MismatchedKeysDropFrames) {
  // Two nodes with different master secrets: MACs never verify.
  const auto ports = free_ports(4);
  const auto peers = local_peers(ports);
  std::vector<std::unique_ptr<Node>> nodes(4);
  for (std::uint32_t p = 0; p < 4; ++p) {
    nodes[p] = std::make_unique<Node>();
    const Bytes master = p == 3 ? to_bytes("evil") : to_bytes("good");
    nodes[p]->keys = std::make_unique<KeyChain>(KeyChain::deal(master, 4, p));
    TcpTransport::Options o;
    o.n = 4;
    o.self = p;
    o.peers = peers;
    nodes[p]->transport = std::make_unique<TcpTransport>(o, *nodes[p]->keys);
    Node* raw = nodes[p].get();
    raw->transport->set_sink([raw](ProcessId from, Slice frame) {
      std::lock_guard<std::mutex> lock(raw->mutex);
      raw->received.emplace_back(from, frame.to_bytes());
    });
  }
  std::vector<std::thread> starters;
  for (auto& node : nodes) {
    starters.emplace_back([&node] { node->transport->start(); });
  }
  for (auto& t : starters) t.join();
  for (auto& node : nodes) {
    node->thread = std::thread([raw = node.get()] { raw->run(); });
  }

  nodes[3]->transport->send(0, to_bytes("forged"));
  nodes[1]->transport->send(0, to_bytes("legit"));
  for (int waited = 0; waited < 3000 && nodes[0]->count() < 1; waited += 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    std::lock_guard<std::mutex> lock(nodes[0]->mutex);
    ASSERT_EQ(nodes[0]->received.size(), 1u);
    EXPECT_EQ(to_string(nodes[0]->received[0].second), "legit");
  }
  EXPECT_GE(nodes[0]->transport->stats().mac_failures, 1u);

  for (auto& node : nodes) {
    node->stop.store(true);
    node->transport->wakeup();
  }
  for (auto& node : nodes) {
    node->thread.join();
    node->transport->stop();
  }
}

TEST(TcpTransport, StatsCountTraffic) {
  Mesh mesh(4);
  mesh.node(0).transport->send(1, to_bytes("counted"));
  ASSERT_TRUE(mesh.wait_for(1, 1));
  EXPECT_EQ(mesh.node(0).transport->stats().frames_sent, 1u);
  EXPECT_GT(mesh.node(0).transport->stats().bytes_sent, 7u);
  EXPECT_EQ(mesh.node(1).transport->stats().frames_received, 1u);
}

TEST(TcpTransport, SendToSelfOrOutOfRangeIgnored) {
  Mesh mesh(4);
  mesh.node(0).transport->send(0, to_bytes("self"));
  mesh.node(0).transport->send(99, to_bytes("nowhere"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(mesh.node(0).transport->stats().frames_sent, 0u);
}

TEST(TcpTransport, ConcurrentSendersToOneReceiver) {
  Mesh mesh(4);
  constexpr int kPer = 100;
  std::vector<std::thread> senders;
  for (std::uint32_t p = 1; p < 4; ++p) {
    senders.emplace_back([&mesh, p] {
      for (int i = 0; i < kPer; ++i) {
        Writer w;
        w.u32(p);
        w.u32(static_cast<std::uint32_t>(i));
        mesh.node(p).transport->send(0, std::move(w).take());
      }
    });
  }
  for (auto& t : senders) t.join();
  ASSERT_TRUE(mesh.wait_for(0, 3 * kPer, 15000));
  // Per-sender FIFO even with interleaving.
  std::lock_guard<std::mutex> lock(mesh.node(0).mutex);
  std::map<ProcessId, std::uint32_t> next;
  for (auto& [from, frame] : mesh.node(0).received) {
    Reader r(frame);
    const std::uint32_t claimed_from = r.u32();
    const std::uint32_t seq = r.u32();
    EXPECT_EQ(claimed_from, from);
    EXPECT_EQ(seq, next[from]++);
  }
}

}  // namespace
}  // namespace ritas::net
