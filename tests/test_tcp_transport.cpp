// Real-socket transport tests: mesh setup, framing, HMAC integrity,
// session handshakes, anti-replay counters, oversize protection,
// adversarial wire peers, concurrent traffic.
#include "net/tcp_transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "common/serialize.h"
#include "net_helpers.h"

namespace ritas::net {
namespace {

using test::free_ports;
using test::local_peers;
using test::RawPeer;

struct Node {
  std::unique_ptr<KeyChain> keys;
  std::unique_ptr<TcpTransport> transport;
  std::thread thread;
  std::mutex mutex;
  std::vector<std::pair<ProcessId, Bytes>> received;
  std::atomic<bool> stop{false};
  std::atomic<bool> started{false};
  std::atomic<bool> start_failed{false};

  /// start() needs only a partial mesh, so a node must begin polling the
  /// moment its own start() returns — peers below threshold depend on it
  /// to finish their in-flight handshakes.
  void start_and_run() {
    try {
      transport->start();
      started.store(true);
    } catch (const std::exception&) {
      start_failed.store(true);
      return;
    }
    while (!stop.load()) transport->poll_once(20);
  }
  std::size_t count() {
    std::lock_guard<std::mutex> lock(mutex);
    return received.size();
  }
};

std::unique_ptr<Node> make_node(std::uint32_t n, ProcessId p,
                                const std::vector<PeerAddr>& peers,
                                const Bytes& master, bool authenticate = true,
                                int connect_timeout_ms = 15'000,
                                std::uint32_t crypto_threads = 0) {
  auto node = std::make_unique<Node>();
  node->keys = std::make_unique<KeyChain>(KeyChain::deal(master, n, p));
  TcpTransport::Options o;
  o.n = n;
  o.self = p;
  o.peers = peers;
  o.authenticate = authenticate;
  o.connect_timeout_ms = connect_timeout_ms;
  o.crypto_threads = crypto_threads;
  node->transport = std::make_unique<TcpTransport>(o, *node->keys);
  Node* raw = node.get();
  raw->transport->set_sink([raw](ProcessId from, Slice frame) {
    std::lock_guard<std::mutex> lock(raw->mutex);
    raw->received.emplace_back(from, frame.to_bytes());
  });
  return node;
}

bool wait_until(const std::function<bool()>& cond, int timeout_ms = 5000) {
  for (int waited = 0; waited < timeout_ms; waited += 5) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

/// Spins up an n-node mesh on localhost; each node starts and polls in its
/// own thread.
class Mesh {
 public:
  explicit Mesh(std::uint32_t n, bool authenticate = true,
                const Bytes& master = to_bytes("mesh-master"),
                std::uint32_t crypto_threads = 0) {
    const auto ports = free_ports(n);
    const auto peers = local_peers(ports);
    nodes_.resize(n);
    for (std::uint32_t p = 0; p < n; ++p) {
      nodes_[p] = make_node(n, p, peers, master, authenticate,
                            /*connect_timeout_ms=*/15'000, crypto_threads);
      nodes_[p]->thread =
          std::thread([raw = nodes_[p].get()] { raw->start_and_run(); });
    }
    for (auto& node : nodes_) {
      if (!wait_until([&] { return node->started.load() || node->start_failed.load(); },
                      20'000) ||
          node->start_failed.load()) {
        throw std::runtime_error("Mesh: node failed to start");
      }
    }
  }

  ~Mesh() {
    for (auto& node : nodes_) {
      node->stop.store(true);
      node->transport->wakeup();
    }
    for (auto& node : nodes_) {
      if (node->thread.joinable()) node->thread.join();
      node->transport->stop();
    }
  }

  Node& node(std::uint32_t p) { return *nodes_[p]; }

  bool wait_for(std::uint32_t p, std::size_t count, int timeout_ms = 5000) {
    return wait_until([&] { return node(p).count() >= count; }, timeout_ms);
  }

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST(TcpTransport, MeshDeliversFrames) {
  Mesh mesh(4);
  mesh.node(0).transport->send(1, to_bytes("zero to one"));
  mesh.node(3).transport->send(1, to_bytes("three to one"));
  ASSERT_TRUE(mesh.wait_for(1, 2));
  std::lock_guard<std::mutex> lock(mesh.node(1).mutex);
  std::set<std::string> got;
  for (auto& [from, frame] : mesh.node(1).received) {
    got.insert(to_string(frame));
  }
  EXPECT_TRUE(got.contains("zero to one"));
  EXPECT_TRUE(got.contains("three to one"));
}

TEST(TcpTransport, FifoPerPair) {
  Mesh mesh(4);
  for (int i = 0; i < 200; ++i) {
    mesh.node(2).transport->send(0, Bytes{static_cast<std::uint8_t>(i)});
  }
  ASSERT_TRUE(mesh.wait_for(0, 200));
  std::lock_guard<std::mutex> lock(mesh.node(0).mutex);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(mesh.node(0).received[static_cast<std::size_t>(i)].second[0], i);
  }
}

TEST(TcpTransport, LargeFrames) {
  Mesh mesh(4);
  const Bytes big(2 * 1024 * 1024, 0xab);
  mesh.node(0).transport->send(2, Bytes(big));
  ASSERT_TRUE(mesh.wait_for(2, 1, 15000));
  std::lock_guard<std::mutex> lock(mesh.node(2).mutex);
  EXPECT_EQ(mesh.node(2).received[0].second, big);
}

TEST(TcpTransport, WorksWithoutAuthentication) {
  Mesh mesh(4, /*authenticate=*/false);
  mesh.node(1).transport->send(0, to_bytes("plain"));
  ASSERT_TRUE(mesh.wait_for(0, 1));
}

TEST(TcpTransport, LinkStatesReachFullMesh) {
  Mesh mesh(4);
  for (std::uint32_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(wait_until(
        [&] { return mesh.node(p).transport->links_up() == 3; }, 10'000))
        << "node " << p << " never completed its mesh";
    const auto states = mesh.node(p).transport->link_states();
    ASSERT_EQ(states.size(), 4u);
    for (std::uint32_t q = 0; q < 4; ++q) {
      EXPECT_EQ(states[q], LinkState::kUp) << "p=" << p << " q=" << q;
    }
  }
}

TEST(TcpTransport, MismatchedKeysCannotJoinTheMesh) {
  // Node 3 holds a different master secret. With authenticated session
  // handshakes it can never bring up a single link: every REPLY it
  // receives fails its MAC check. The good nodes reach their partial-mesh
  // threshold among themselves and traffic flows normally.
  const auto ports = free_ports(4);
  const auto peers = local_peers(ports);
  std::vector<std::unique_ptr<Node>> nodes(4);
  for (std::uint32_t p = 0; p < 4; ++p) {
    const Bytes master = p == 3 ? to_bytes("evil") : to_bytes("good");
    nodes[p] = make_node(4, p, peers, master, /*authenticate=*/true,
                         /*connect_timeout_ms=*/p == 3 ? 1500 : 15'000);
    nodes[p]->thread = std::thread([raw = nodes[p].get()] { raw->start_and_run(); });
  }
  for (std::uint32_t p = 0; p < 3; ++p) {
    ASSERT_TRUE(wait_until([&] { return nodes[p]->started.load(); }, 20'000));
  }
  // The imposter's start() must time out below threshold, never connect.
  ASSERT_TRUE(wait_until([&] { return nodes[3]->start_failed.load(); }, 20'000));
  EXPECT_EQ(nodes[3]->transport->links_up(), 0u);
  EXPECT_GE(nodes[3]->transport->stats().handshake_failures, 1u);

  nodes[1]->transport->send(0, to_bytes("legit"));
  ASSERT_TRUE(wait_until([&] { return nodes[0]->count() >= 1; }));
  {
    std::lock_guard<std::mutex> lock(nodes[0]->mutex);
    ASSERT_EQ(nodes[0]->received.size(), 1u);
    EXPECT_EQ(to_string(nodes[0]->received[0].second), "legit");
    EXPECT_EQ(nodes[0]->received[0].first, 1u);
  }

  for (auto& node : nodes) {
    node->stop.store(true);
    node->transport->wakeup();
  }
  for (auto& node : nodes) {
    node->thread.join();
    node->transport->stop();
  }
}

TEST(TcpTransport, StatsCountTraffic) {
  Mesh mesh(4);
  mesh.node(0).transport->send(1, to_bytes("counted"));
  ASSERT_TRUE(mesh.wait_for(1, 1));
  EXPECT_EQ(mesh.node(0).transport->stats().frames_sent, 1u);
  EXPECT_GT(mesh.node(0).transport->stats().bytes_sent, 7u);
  EXPECT_EQ(mesh.node(1).transport->stats().frames_received, 1u);
}

TEST(TcpTransport, SendToSelfOrOutOfRangeIgnored) {
  Mesh mesh(4);
  mesh.node(0).transport->send(0, to_bytes("self"));
  mesh.node(0).transport->send(99, to_bytes("nowhere"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(mesh.node(0).transport->stats().frames_sent, 0u);
}

TEST(TcpTransport, ConcurrentSendersToOneReceiver) {
  Mesh mesh(4);
  constexpr int kPer = 100;
  std::vector<std::thread> senders;
  for (std::uint32_t p = 1; p < 4; ++p) {
    senders.emplace_back([&mesh, p] {
      for (int i = 0; i < kPer; ++i) {
        Writer w;
        w.u32(p);
        w.u32(static_cast<std::uint32_t>(i));
        mesh.node(p).transport->send(0, std::move(w).take());
      }
    });
  }
  for (auto& t : senders) t.join();
  ASSERT_TRUE(mesh.wait_for(0, 3 * kPer, 15000));
  // Per-sender FIFO even with interleaving.
  std::lock_guard<std::mutex> lock(mesh.node(0).mutex);
  std::map<ProcessId, std::uint32_t> next;
  for (auto& [from, frame] : mesh.node(0).received) {
    Reader r(frame);
    const std::uint32_t claimed_from = r.u32();
    const std::uint32_t seq = r.u32();
    EXPECT_EQ(claimed_from, from);
    EXPECT_EQ(seq, next[from]++);
  }
}

TEST(TcpTransport, ConcurrentSendersExerciseTheAnyThreadContract) {
  // The documented threading contract: send() is callable from ANY number
  // of threads concurrently, racing the poll thread, with per-link FIFO
  // preserved. Several app threads send to the same destination AND to
  // distinct ones while the mesh's poll threads run — under ASan/TSan this
  // is the focused race test for the per-Conn mutex.
  Mesh mesh(4);
  constexpr int kPer = 150;
  constexpr int kThreadsPerNode = 2;
  std::vector<std::thread> senders;
  for (std::uint32_t p = 1; p < 4; ++p) {
    for (int t = 0; t < kThreadsPerNode; ++t) {
      senders.emplace_back([&mesh, p, t] {
        for (int i = 0; i < kPer; ++i) {
          Writer w;
          w.u32(p * 16 + static_cast<std::uint32_t>(t));
          w.u32(static_cast<std::uint32_t>(i));
          mesh.node(p).transport->send(0, std::move(w).take());
          // Cross-traffic to a second destination from the same threads.
          mesh.node(p).transport->send(p == 1 ? 2 : 1, to_bytes("x"));
        }
      });
    }
  }
  for (auto& s : senders) s.join();
  ASSERT_TRUE(mesh.wait_for(0, 3 * kThreadsPerNode * kPer, 20'000));
  // Per (sender thread) FIFO: each stream's sequence numbers arrive
  // monotonically even though streams interleave arbitrarily.
  std::lock_guard<std::mutex> lock(mesh.node(0).mutex);
  std::map<std::uint32_t, std::uint32_t> next;
  for (auto& [from, frame] : mesh.node(0).received) {
    Reader r(frame);
    const std::uint32_t stream = r.u32();
    const std::uint32_t seq = r.u32();
    EXPECT_EQ(stream / 16, from);
    EXPECT_EQ(seq, next[stream]++);
  }
}

TEST(TcpTransport, ConcurrentSendersWithCryptoWorkers) {
  // Same contract with the MAC pipeline on: staged tx MACs must flush in
  // counter order per link and rx verdicts must re-sequence in arrival
  // order, so the per-sender FIFO observation is unchanged.
  Mesh mesh(4, /*authenticate=*/true, to_bytes("mesh-master"),
            /*crypto_threads=*/2);
  constexpr int kPer = 100;
  std::vector<std::thread> senders;
  for (std::uint32_t p = 1; p < 4; ++p) {
    senders.emplace_back([&mesh, p] {
      for (int i = 0; i < kPer; ++i) {
        Writer w;
        w.u32(p);
        w.u32(static_cast<std::uint32_t>(i));
        mesh.node(p).transport->send(0, std::move(w).take());
      }
    });
  }
  for (auto& t : senders) t.join();
  ASSERT_TRUE(mesh.wait_for(0, 3 * kPer, 20'000));
  {
    std::lock_guard<std::mutex> lock(mesh.node(0).mutex);
    std::map<ProcessId, std::uint32_t> nxt;
    for (auto& [from, frame] : mesh.node(0).received) {
      Reader r(frame);
      EXPECT_EQ(r.u32(), from);
      EXPECT_EQ(r.u32(), nxt[from]++);
    }
  }
  EXPECT_GT(mesh.node(0).transport->stats().crypto_offloaded, 0u);
  EXPECT_GT(mesh.node(1).transport->stats().crypto_mac_offloaded, 0u);
}

// --- adversarial wire peers ------------------------------------------------
// A lone victim node (n=2, self=0: partial-mesh threshold 1, no dials) and
// a RawPeer that speaks the wire protocol directly as process 1, holding
// the real pairwise key — the strongest position short of full compromise.

struct Victim {
  std::unique_ptr<Node> node;
  std::uint16_t port;
  Bytes peer_key;  // s_01, as the dealer would hand it to process 1

  Victim() {
    const auto ports = free_ports(2);
    const auto peers = local_peers(ports);
    port = ports[0];
    node = make_node(2, 0, peers, to_bytes("victim-master"));
    const KeyChain peer_chain = KeyChain::deal(to_bytes("victim-master"), 2, 1);
    peer_key.assign(peer_chain.key(0).begin(), peer_chain.key(0).end());
    node->thread = std::thread([raw = node.get()] { raw->start_and_run(); });
  }

  ~Victim() {
    node->stop.store(true);
    node->transport->wakeup();
    node->thread.join();
    node->transport->stop();
  }

  TcpTransport::Stats stats() const { return node->transport->stats(); }
};

TEST(TcpTransportAdversarial, TamperedMacIsCountedDrop) {
  Victim v;
  RawPeer peer(v.port, 1, 0, v.peer_key);
  peer.connect();
  ASSERT_TRUE(peer.handshake(/*nonce_d=*/0x1111));
  ASSERT_TRUE(wait_until([&] { return v.node->transport->links_up() == 1; }));

  peer.send_frame(0, to_bytes("good frame"));
  ASSERT_TRUE(wait_until([&] { return v.node->count() >= 1; }));

  // Flip one MAC bit on an otherwise valid frame: dropped and counted,
  // never delivered, never fatal to the session.
  Bytes forged = peer.make_frame(peer.sid(), 1, to_bytes("evil frame"));
  forged.back() ^= 0x01;
  peer.send_raw(forged);
  ASSERT_TRUE(wait_until([&] { return v.stats().mac_failures >= 1; }));

  // Same counter, honest MAC: the tampered frame must not have consumed it.
  peer.send_frame(1, to_bytes("still good"));
  ASSERT_TRUE(wait_until([&] { return v.node->count() >= 2; }));
  std::lock_guard<std::mutex> lock(v.node->mutex);
  EXPECT_EQ(to_string(v.node->received[0].second), "good frame");
  EXPECT_EQ(to_string(v.node->received[1].second), "still good");
}

TEST(TcpTransportAdversarial, OldSessionReplayIsRejected) {
  Victim v;
  RawPeer peer(v.port, 1, 0, v.peer_key);
  peer.connect();
  ASSERT_TRUE(peer.handshake(0x2222));
  const Bytes session_a_frame = peer.make_frame(peer.sid(), 0, to_bytes("pay"));
  peer.send_raw(session_a_frame);
  ASSERT_TRUE(wait_until([&] { return v.node->count() >= 1; }));
  const std::uint64_t sid_a = peer.sid();

  // New session: fresh nonces must yield a fresh session id.
  peer.connect();
  ASSERT_TRUE(peer.handshake(0x3333));
  EXPECT_NE(peer.sid(), sid_a);
  EXPECT_EQ(peer.acked(), 1u) << "REPLY should carry the victim's floor";

  // Replaying the old session's bytes — a valid MAC under a stale session
  // id — must be rejected without touching the counter floor or crashing.
  peer.send_raw(session_a_frame);
  ASSERT_TRUE(wait_until([&] { return v.stats().session_rejects >= 1; }));
  EXPECT_EQ(v.node->count(), 1u) << "replay must not deliver twice";

  // The new session continues from the resynced floor.
  peer.send_frame(peer.acked(), to_bytes("fresh"));
  ASSERT_TRUE(wait_until([&] { return v.node->count() >= 2; }));
  std::lock_guard<std::mutex> lock(v.node->mutex);
  EXPECT_EQ(to_string(v.node->received[1].second), "fresh");
}

TEST(TcpTransportAdversarial, StaleCounterFloodIsDropped) {
  Victim v;
  RawPeer peer(v.port, 1, 0, v.peer_key);
  peer.connect();
  ASSERT_TRUE(peer.handshake(0x4444));
  for (std::uint64_t c = 0; c < 3; ++c) {
    peer.send_frame(c, to_bytes("frame"));
  }
  ASSERT_TRUE(wait_until([&] { return v.node->count() >= 3; }));

  // Flood with frames below the floor: valid session, valid MACs, stale
  // counters. Every one is a counted replay drop; none delivers.
  for (int i = 0; i < 20; ++i) peer.send_frame(0, to_bytes("flood"));
  ASSERT_TRUE(wait_until([&] { return v.stats().replay_drops >= 20; }));
  EXPECT_EQ(v.node->count(), 3u);
  EXPECT_EQ(v.stats().frames_received, 3u);

  // And the session still works.
  peer.send_frame(3, to_bytes("after flood"));
  ASSERT_TRUE(wait_until([&] { return v.node->count() >= 4; }));
}

TEST(TcpTransportAdversarial, MalformedHandshakesAreCountedAndContained) {
  Victim v;
  // A healthy session first, so we can prove the garbage never hurt it.
  RawPeer good(v.port, 1, 0, v.peer_key);
  good.connect();
  ASSERT_TRUE(good.handshake(0x5555));

  const auto hello = [&](std::uint32_t magic, std::uint8_t version,
                         std::uint8_t flags, std::uint32_t id) {
    Writer w(18);
    w.u32(magic);
    w.u8(version);
    w.u8(flags);
    w.u32(id);
    w.u64(0xdead);
    return std::move(w).take();
  };
  const std::vector<Bytes> bad_hellos = {
      hello(0x00000000, 2, 1, 1),  // wrong magic
      hello(0x52495441, 1, 1, 1),  // stale wire version
      hello(0x52495441, 2, 0, 1),  // authentication flag mismatch
      hello(0x52495441, 2, 1, 0),  // claims the victim's own id
      hello(0x52495441, 2, 1, 7),  // id outside the group
  };
  std::uint64_t expected = v.stats().handshake_failures;
  for (const Bytes& h : bad_hellos) {
    RawPeer garbage(v.port, 1, 0, v.peer_key);
    garbage.connect();
    garbage.send_raw(h);
    ++expected;
    ASSERT_TRUE(wait_until([&] { return v.stats().handshake_failures >= expected; }))
        << "hello variant not counted";
  }

  // A CONFIRM forged without key knowledge must not bind (and must not
  // displace the healthy session either — it keeps delivering).
  {
    RawPeer outsider(v.port, 1, 0, Bytes(32, 0xee));  // wrong key
    outsider.connect();
    EXPECT_TRUE(outsider.handshake(0x6666));  // REPLY arrives; CONFIRM is forged
    ++expected;
    ASSERT_TRUE(wait_until([&] { return v.stats().handshake_failures >= expected; }));
  }
  good.send_frame(0, to_bytes("unharmed"));
  ASSERT_TRUE(wait_until([&] { return v.node->count() >= 1; }));
  std::lock_guard<std::mutex> lock(v.node->mutex);
  EXPECT_EQ(to_string(v.node->received[0].second), "unharmed");
}

}  // namespace
}  // namespace ritas::net
