// The observability layer: TracePath rendering, event recording, the
// deterministic binary encoding, the Chrome trace_event exporter and the
// trace-derived summary — both on hand-built tracers and against full
// simulated cluster runs (same seed => bit-identical trace bytes).
#include "common/trace.h"

#include <gtest/gtest.h>

#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::fast_lan;
using test::kDeadline;

TracePath path_of(std::initializer_list<std::pair<std::uint8_t, std::uint64_t>> comps) {
  TracePath p;
  for (const auto& [t, s] : comps) {
    p.type[p.depth] = t;
    p.seq[p.depth] = s;
    ++p.depth;
  }
  return p;
}

TEST(TracePath, ToStringMatchesInstanceIdRendering) {
  EXPECT_EQ(path_of({}).to_string(), "<stack>");
  EXPECT_EQ(path_of({{1, 7}}).to_string(), "rb#7");
  EXPECT_EQ(path_of({{6, 1}, {4, 0}, {3, 2}}).to_string(), "ab#1/mvc#0/bc#2");
  // And it agrees with core's InstanceId for the same path.
  const InstanceId id =
      InstanceId::root(ProtocolType::kAtomicBroadcast, 1)
          .child(Component{ProtocolType::kMultiValuedConsensus, 0});
  EXPECT_EQ(id.trace_path().to_string(), id.to_string());
}

TEST(TracePath, LeafAndRootTypes) {
  const TracePath p = path_of({{6, 1}, {3, 2}});
  EXPECT_EQ(p.root_type(), 6);
  EXPECT_EQ(p.leaf_type(), 3);
  EXPECT_EQ(path_of({}).leaf_type(), 0);
}

TEST(Tracer, RecordsWhenEnabledOnly) {
  Tracer t(2);
  EXPECT_EQ(t.pid(), 2u);
  t.record({10, TraceEventKind::kSend, 1, 3, 100, path_of({{1, 1}})});
  EXPECT_EQ(t.size(), 1u);
  t.set_enabled(false);
  t.record({20, TraceEventKind::kSend, 1, 3, 100, path_of({{1, 1}})});
  EXPECT_EQ(t.size(), 1u);
  t.set_enabled(true);
  t.record({30, TraceEventKind::kRecv, 1, 3, 100, path_of({{1, 1}})});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.events()[1].ts_ns, 30u);
}

TEST(Tracer, EncodeIsDeterministicAndVersioned) {
  auto build = [] {
    Tracer t(1);
    t.record({5, TraceEventKind::kInstanceSpawn, 0, 0xffffffffu, 0,
              path_of({{3, 9}})});
    TraceEvent step{7, TraceEventKind::kPhase,
                    static_cast<std::uint8_t>(TracePhase::kBcStep), 0xffffffffu,
                    1, path_of({{3, 9}})};
    step.sub = 0x0a;
    t.record(step);
    return t.encode();
  };
  const Bytes a = build();
  const Bytes b = build();
  EXPECT_EQ(a, b);
  ASSERT_GE(a.size(), 4u);
  // Little-endian magic "RTRC" = 0x43525452.
  EXPECT_EQ(a[0], 0x52);  // 'R'
  EXPECT_EQ(a[1], 0x54);  // 'T'
}

TEST(Tracer, EncodeCoversTheSubByte) {
  auto with_sub = [](std::uint8_t sub) {
    Tracer t(1);
    TraceEvent e{7, TraceEventKind::kPhase,
                 static_cast<std::uint8_t>(TracePhase::kBcStep), 0xffffffffu, 1,
                 TracePath{}};
    e.sub = sub;
    t.record(e);
    return t.encode();
  };
  EXPECT_NE(with_sub(0x0a), with_sub(0x0b));
}

TEST(Tracer, EncodeDiffersWhenEventsDiffer) {
  Tracer t1(1), t2(1);
  t1.record({5, TraceEventKind::kSend, 1, 2, 10, path_of({{1, 1}})});
  t2.record({5, TraceEventKind::kSend, 1, 2, 11, path_of({{1, 1}})});
  EXPECT_NE(t1.encode(), t2.encode());
}

TEST(TraceNames, AreStable) {
  EXPECT_STREQ(trace_proto_name(1), "rb");
  EXPECT_STREQ(trace_proto_name(6), "ab");
  EXPECT_STREQ(trace_proto_name(0), "?");
  EXPECT_STREQ(trace_drop_name(TraceDrop::kMalformed), "drop.malformed");
  EXPECT_STREQ(trace_phase_name(TracePhase::kRbInit), "rb.init");
}

TEST(Summarize, CountsByKindAndAttribution) {
  Tracer t(0);
  const TracePath rb = path_of({{1, 1}});
  t.record({1, TraceEventKind::kInstanceSpawn, 0, 0xffffffffu, 0, rb});
  // kRbInit arg = Attribution (0 payload, 1 agreement).
  t.record({2, TraceEventKind::kPhase,
            static_cast<std::uint8_t>(TracePhase::kRbInit), 0xffffffffu, 0, rb});
  t.record({3, TraceEventKind::kSend, 1, 2, 40, rb});
  t.record({4, TraceEventKind::kRecv, 1, 3, 40, rb});
  t.record({5, TraceEventKind::kDrop,
            static_cast<std::uint8_t>(TraceDrop::kInvalid), 3, 0, rb});
  t.record({9, TraceEventKind::kComplete, 0, 0xffffffffu, 8, rb});
  const TraceSummary s = summarize(t);
  EXPECT_EQ(s.events, 6u);
  EXPECT_EQ(s.sends, 1u);
  EXPECT_EQ(s.recvs, 1u);
  EXPECT_EQ(s.bytes_sent, 40u);
  EXPECT_EQ(s.drops, 1u);
  EXPECT_EQ(s.spawns[1], 1u);
  EXPECT_EQ(s.completes[1], 1u);
  EXPECT_EQ(s.latency_total_ns[1], 8u);
  EXPECT_EQ(s.rb_started_payload, 1u);
  EXPECT_EQ(s.broadcasts_total(), 1u);
  EXPECT_EQ(s.broadcasts_agreement(), 0u);
}

TEST(ChromeExport, EmitsValidSkeleton) {
  Tracer t(0);
  const TracePath rb = path_of({{1, 1}});
  t.record({1000, TraceEventKind::kInstanceSpawn, 0, 0xffffffffu, 0, rb});
  t.record({2000, TraceEventKind::kSend, 1, 2, 40, rb});
  t.record({5000, TraceEventKind::kComplete, 0, 0xffffffffu, 4000, rb});
  const std::string json = chrome_trace_json({&t});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // spawn->complete slice
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // send instant
  EXPECT_NE(json.find("rb#1"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// --- full-cluster integration ---------------------------------------------

Bytes traced_run_bytes(std::uint64_t seed) {
  test::ClusterOptions o = fast_lan(4, seed);
  o.lan.jitter_ns = 400'000;
  o.trace = true;
  Cluster c(o);
  auto cap = test::run_binary_consensus(c, {true, false, true, false});
  c.run_all();
  return c.trace_bytes();
}

TEST(TraceCluster, SameSeedBitIdenticalTrace) {
  for (std::uint64_t seed : {1ULL, 42ULL}) {
    EXPECT_EQ(traced_run_bytes(seed), traced_run_bytes(seed)) << "seed " << seed;
  }
}

TEST(TraceCluster, DifferentSeedsDiverge) {
  EXPECT_NE(traced_run_bytes(1), traced_run_bytes(2));
}

TEST(TraceCluster, DisabledTracingHasZeroEventsAndSameBehavior) {
  auto fingerprint = [](bool trace) {
    test::ClusterOptions o = fast_lan(4, 77);
    o.trace = trace;
    Cluster c(o);
    auto cap = test::run_mvc(
        c, {to_bytes("m"), to_bytes("m"), to_bytes("m"), to_bytes("m")});
    c.run_all();
    const Metrics m = c.total_metrics();
    if (!trace) {
      EXPECT_EQ(c.tracer(0), nullptr);
      EXPECT_TRUE(c.trace_bytes().empty());
    }
    return std::tuple(m.msgs_sent, m.bytes_sent, m.broadcasts_total(), c.now());
  };
  // Tracing must be a pure observer: identical execution either way.
  EXPECT_EQ(fingerprint(false), fingerprint(true));
}

TEST(TraceCluster, SummaryMatchesStackMetrics) {
  test::ClusterOptions o = fast_lan(4, 9);
  o.trace = true;
  Cluster c(o);
  auto cap = test::run_mvc(
      c, {to_bytes("v"), to_bytes("v"), to_bytes("v"), to_bytes("v")});
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  c.run_all();
  const Metrics m = c.total_metrics();
  const TraceSummary s = summarize(c.tracers());
  // Figure-7 attribution, derived two independent ways.
  EXPECT_EQ(s.rb_started_payload, m.rb_started_payload);
  EXPECT_EQ(s.rb_started_agreement, m.rb_started_agreement);
  EXPECT_EQ(s.eb_started_payload, m.eb_started_payload);
  EXPECT_EQ(s.eb_started_agreement, m.eb_started_agreement);
  EXPECT_EQ(s.broadcasts_total(), m.broadcasts_total());
  EXPECT_EQ(s.broadcasts_agreement(), m.broadcasts_agreement());
  // Wire accounting.
  EXPECT_EQ(s.sends, m.msgs_sent);
  EXPECT_EQ(s.bytes_sent, m.bytes_sent);
  // Completion counts align with the latency histograms.
  EXPECT_EQ(s.completes[static_cast<std::size_t>(ProtocolType::kMultiValuedConsensus)],
            m.proto_latency_ns[static_cast<std::size_t>(
                                   ProtocolType::kMultiValuedConsensus)]
                .count());
  EXPECT_EQ(s.completes[static_cast<std::size_t>(ProtocolType::kBinaryConsensus)],
            m.bc_decided);
}

TEST(TraceCluster, ChromeJsonIsDeterministic) {
  auto render = [] {
    test::ClusterOptions o = fast_lan(4, 5);
    o.trace = true;
    Cluster c(o);
    auto cap = test::run_binary_consensus(c, {true, true, true, true});
    c.run_all();
    return c.chrome_trace_json();
  };
  const std::string a = render();
  EXPECT_EQ(a, render());
  EXPECT_NE(a.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(a.find("bc#1"), std::string::npos);
}

TEST(TraceCluster, PhaseEventsCoverConsensusLifecycle) {
  test::ClusterOptions o = fast_lan(4, 6);
  o.trace = true;
  Cluster c(o);
  auto cap = test::run_binary_consensus(c, {true, true, true, true});
  c.run_all();
  bool saw_propose = false, saw_step = false, saw_decide = false;
  bool saw_rb_deliver = false;
  for (const Tracer* t : c.tracers()) {
    for (const TraceEvent& e : t->events()) {
      if (e.kind != TraceEventKind::kPhase) continue;
      const auto ph = static_cast<TracePhase>(e.code);
      saw_propose = saw_propose || ph == TracePhase::kBcPropose;
      saw_step = saw_step || ph == TracePhase::kBcStep;
      saw_decide = saw_decide || ph == TracePhase::kBcDecide;
      saw_rb_deliver = saw_rb_deliver || ph == TracePhase::kRbDeliver;
    }
  }
  EXPECT_TRUE(saw_propose);
  EXPECT_TRUE(saw_step);
  EXPECT_TRUE(saw_decide);
  EXPECT_TRUE(saw_rb_deliver);
}

}  // namespace
}  // namespace ritas
