// The transport fast path's two byte-boundary workhorses, in isolation:
//
//  * net/batch_writer.h — multi-frame scatter-gather sendmsg batches must
//    resume byte-exactly after a short write landing ANYWHERE: mid-header,
//    mid-body, mid-MAC, or exactly on a segment/frame boundary. Proven at
//    every offset against the iovec builder, then against a real kernel
//    socket with a tiny SO_SNDBUF forcing genuine short writes.
//
//  * net/frame_reassembler.h — the receive-side stream splitter must hand
//    out the identical frame sequence (and the identical oversize verdict)
//    whether the stream arrives whole, one byte at a time, or chopped at
//    seeded random split points. Replayed over every tests/corpus/*.hex
//    body so the malformed-frame corpus pins the boundary behavior too.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "net/batch_writer.h"
#include "net/frame_reassembler.h"

namespace ritas::net {
namespace {

// ---------------------------------------------------------------------------
// Helpers

/// Owns the three segments of a wire frame and exposes the FrameImage view.
struct TestFrame {
  Bytes hdr;
  Bytes body;
  Bytes mac;  // empty = unauthenticated frame

  FrameImage image() const {
    FrameImage img;
    img.parts[0] = ByteView(hdr.data(), hdr.size());
    img.parts[1] = ByteView(body.data(), body.size());
    img.parts[2] = ByteView(mac.data(), mac.size());
    return img;
  }
  Bytes wire() const {
    Bytes w = hdr;
    w.insert(w.end(), body.begin(), body.end());
    w.insert(w.end(), mac.begin(), mac.end());
    return w;
  }
};

TestFrame make_frame(std::uint64_t sid, std::uint64_t counter, Bytes body,
                     bool with_mac) {
  TestFrame f;
  Writer hdr(FrameReassembler::kHeaderSize);
  hdr.u32(static_cast<std::uint32_t>(body.size()));
  hdr.u64(sid);
  hdr.u64(counter);
  const ByteView hb = hdr.data();
  f.hdr.assign(hb.begin(), hb.end());
  f.body = std::move(body);
  if (with_mac) {
    f.mac.resize(FrameReassembler::kMacSize);
    for (std::size_t i = 0; i < f.mac.size(); ++i) {
      f.mac[i] = static_cast<std::uint8_t>(0xA0 + counter + i);
    }
  }
  return f;
}

Bytes patterned_body(std::size_t size, std::uint8_t seed) {
  Bytes b(size);
  for (std::size_t i = 0; i < size; ++i) {
    b[i] = static_cast<std::uint8_t>(seed * 31 + i * 7 + 1);
  }
  return b;
}

Bytes concat_wire(const std::vector<TestFrame>& frames) {
  Bytes all;
  for (const TestFrame& f : frames) {
    const Bytes w = f.wire();
    all.insert(all.end(), w.begin(), w.end());
  }
  return all;
}

/// Flattens what build_batch_iov would hand to the kernel.
Bytes gather_iov(const std::vector<FrameImage>& imgs, std::size_t first_off,
                 std::size_t max_iov) {
  std::vector<iovec> iov(max_iov);
  const std::size_t used =
      build_batch_iov(imgs.data(), imgs.size(), first_off, iov.data(), max_iov);
  Bytes out;
  for (std::size_t i = 0; i < used; ++i) {
    const auto* p = static_cast<const std::uint8_t*>(iov[i].iov_base);
    out.insert(out.end(), p, p + iov[i].iov_len);
    EXPECT_GT(iov[i].iov_len, 0u) << "empty iovec slot leaked into the batch";
  }
  return out;
}

// ---------------------------------------------------------------------------
// build_batch_iov: every resumption offset reproduces the exact wire suffix.

TEST(BatchWriter, SingleFrameResumesAtEveryOffset) {
  // Authenticated 3-part frame: 20 B header | 13 B body | 32 B MAC. Every
  // first_off lands the resume point mid-header (off < 20), mid-body, on
  // each boundary, or mid-MAC — all must yield the byte-exact suffix.
  const TestFrame f = make_frame(0x1111222233334444ULL, 7,
                                 patterned_body(13, 3), /*with_mac=*/true);
  const std::vector<FrameImage> imgs = {f.image()};
  const Bytes wire = f.wire();
  for (std::size_t off = 0; off <= wire.size(); ++off) {
    const Bytes got = gather_iov(imgs, off, 16);
    const Bytes want(wire.begin() + static_cast<std::ptrdiff_t>(off), wire.end());
    ASSERT_EQ(got, want) << "resume at offset " << off;
  }
}

TEST(BatchWriter, MultiFrameBatchResumesAtEveryOffsetOfTheHead) {
  // A batch resumes only ever inside its FIRST unfinished frame (the drain
  // pops completed heads), but the tail frames ride along whole. Mix
  // authenticated, empty-body and unauthenticated frames so empty segments
  // sit at every position.
  std::vector<TestFrame> frames;
  frames.push_back(make_frame(9, 0, patterned_body(10, 1), true));
  frames.push_back(make_frame(9, 1, {}, true));                    // empty body
  frames.push_back(make_frame(9, 2, patterned_body(5, 2), false));  // no MAC
  frames.push_back(make_frame(9, 3, patterned_body(33, 3), true));
  std::vector<FrameImage> imgs;
  for (const TestFrame& f : frames) imgs.push_back(f.image());
  const Bytes all = concat_wire(frames);
  const std::size_t head = frames[0].wire().size();
  for (std::size_t off = 0; off <= head; ++off) {
    const Bytes got = gather_iov(imgs, off, 64);
    const Bytes want(all.begin() + static_cast<std::ptrdiff_t>(off), all.end());
    ASSERT_EQ(got, want) << "batch resume at head offset " << off;
  }
  // The generalized contract — skip spans whole frames too (the builder
  // carries the skip across frame boundaries even though the drain
  // normally advances count instead).
  for (std::size_t off = 0; off <= all.size(); off += 11) {
    const Bytes got = gather_iov(imgs, off, 64);
    const Bytes want(all.begin() + static_cast<std::ptrdiff_t>(off), all.end());
    ASSERT_EQ(got, want) << "cross-frame resume at offset " << off;
  }
}

TEST(BatchWriter, IovBudgetTruncatesCleanlyMidFrame) {
  // A 2-slot budget over 3-part frames must end the batch mid-frame with
  // exactly the first two segments — the caller's cursor math handles the
  // rest. The budget helper itself stays within IOV_MAX.
  const TestFrame f = make_frame(1, 1, patterned_body(8, 4), true);
  const std::vector<FrameImage> imgs = {f.image(), f.image()};
  const Bytes got = gather_iov(imgs, 0, 2);
  Bytes want = f.hdr;
  want.insert(want.end(), f.body.begin(), f.body.end());
  EXPECT_EQ(got, want);
  EXPECT_GE(batch_iov_budget(), 16u);
  EXPECT_LE(batch_iov_budget(), static_cast<std::size_t>(3 * 128));
}

// ---------------------------------------------------------------------------
// sendmsg_batch against a real kernel socket.

struct SocketPair {
  int w = -1;
  int r = -1;
  SocketPair(int sndbuf, int rcvbuf) {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    w = fds[0];
    r = fds[1];
    if (sndbuf > 0) {
      ::setsockopt(w, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
    }
    if (rcvbuf > 0) {
      ::setsockopt(r, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    // sendmsg_batch is specified against non-blocking sockets.
    EXPECT_EQ(::fcntl(w, F_SETFL, ::fcntl(w, F_GETFL, 0) | O_NONBLOCK), 0);
    EXPECT_EQ(::fcntl(r, F_SETFL, ::fcntl(r, F_GETFL, 0) | O_NONBLOCK), 0);
  }
  ~SocketPair() {
    if (w >= 0) ::close(w);
    if (r >= 0) ::close(r);
  }
  Bytes drain() {
    Bytes out;
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t k = ::recv(r, buf, sizeof(buf), 0);
      if (k <= 0) break;
      out.insert(out.end(), buf, buf + k);
    }
    return out;
  }
};

/// Drives a batch to completion with the same cursor arithmetic as
/// TcpTransport::drain_locked: `next` = first unfinished frame, `partial` =
/// bytes of it already written. Returns the number of short writes seen.
void pump_batch(SocketPair& sp, const std::vector<FrameImage>& imgs,
                Bytes& received, std::size_t& shorts) {
  std::size_t next = 0;
  std::size_t partial = 0;
  shorts = 0;
  while (next < imgs.size()) {
    const BatchWriteResult r =
        sendmsg_batch(sp.w, imgs.data() + next, imgs.size() - next, partial,
                      batch_iov_budget());
    ASSERT_NE(r.status, BatchWriteResult::Status::kError) << "pump_batch";
    if (r.status == BatchWriteResult::Status::kAgain) {
      const Bytes got = sp.drain();  // make room; the kernel buffer is full
      received.insert(received.end(), got.begin(), got.end());
      continue;
    }
    std::size_t acc = partial + r.bytes;
    while (next < imgs.size() && acc >= imgs[next].size()) {
      acc -= imgs[next].size();
      ++next;
    }
    partial = acc;
    if (next < imgs.size()) ++shorts;  // the kernel split a frame
  }
  const Bytes got = sp.drain();
  received.insert(received.end(), got.begin(), got.end());
}

TEST(BatchWriter, TinySndbufShortWritesResumeByteExactly) {
  // 96 odd-sized authenticated frames against a minimum-size send buffer:
  // the kernel is forced to split frames at arbitrary byte positions, and
  // the resumed stream must still be byte-identical to the logical concat.
  std::vector<TestFrame> frames;
  for (std::size_t i = 0; i < 96; ++i) {
    frames.push_back(make_frame(0xBEEF, i,
                                patterned_body(397 + (i % 13) * 61,
                                               static_cast<std::uint8_t>(i)),
                                /*with_mac=*/true));
  }
  std::vector<FrameImage> imgs;
  for (const TestFrame& f : frames) imgs.push_back(f.image());
  SocketPair sp(/*sndbuf=*/1, /*rcvbuf=*/1);  // kernel clamps to its minimum
  Bytes received;
  std::size_t shorts = 0;
  pump_batch(sp, imgs, received, shorts);
  EXPECT_EQ(received, concat_wire(frames));
  EXPECT_GT(shorts, 0u) << "SO_SNDBUF never forced a short write; the "
                           "resumption path went unexercised";
}

TEST(BatchWriter, ResumesMidHeaderAndMidMacOnARealSocket) {
  // Deterministic resume points: pre-write the first `cut` bytes of the
  // wire image raw (as if a previous sendmsg stopped exactly there), then
  // let sendmsg_batch finish from first_off=cut. Cuts inside the header
  // (1, 19), on the header/body boundary (20), mid-body, one byte into the
  // MAC, mid-MAC and one byte short of the end all must splice exactly.
  std::vector<TestFrame> frames;
  frames.push_back(make_frame(0xCAFE, 11, patterned_body(57, 9), true));
  frames.push_back(make_frame(0xCAFE, 12, patterned_body(24, 10), true));
  std::vector<FrameImage> imgs;
  for (const TestFrame& f : frames) imgs.push_back(f.image());
  const Bytes head_wire = frames[0].wire();
  const std::size_t hdr = FrameReassembler::kHeaderSize;
  const std::size_t body = frames[0].body.size();
  const std::vector<std::size_t> cuts = {
      1, hdr - 1, hdr, hdr + body / 2, hdr + body,      // mid/end header, body
      hdr + body + 1, hdr + body + 17, head_wire.size() - 1};  // inside MAC
  for (const std::size_t cut : cuts) {
    SocketPair sp(/*sndbuf=*/0, /*rcvbuf=*/0);
    ASSERT_EQ(::send(sp.w, head_wire.data(), cut, 0),
              static_cast<ssize_t>(cut));
    Bytes received = sp.drain();
    std::size_t next = 0;
    std::size_t partial = cut;
    while (next < imgs.size()) {
      const BatchWriteResult r =
          sendmsg_batch(sp.w, imgs.data() + next, imgs.size() - next, partial,
                        batch_iov_budget());
      ASSERT_EQ(r.status, BatchWriteResult::Status::kProgress);
      std::size_t acc = partial + r.bytes;
      while (next < imgs.size() && acc >= imgs[next].size()) {
        acc -= imgs[next].size();
        ++next;
      }
      partial = acc;
    }
    const Bytes got = sp.drain();
    received.insert(received.end(), got.begin(), got.end());
    EXPECT_EQ(received, concat_wire(frames)) << "resume cut at " << cut;
  }
}

// ---------------------------------------------------------------------------
// FrameReassembler: delivery granularity must not change verdicts.

/// Everything the transport would act on, in order: each frame's fields
/// and bytes, then the terminal status after the stream is exhausted.
struct Verdicts {
  std::vector<std::string> events;
  bool operator==(const Verdicts&) const = default;
};

void harvest(FrameReassembler& ra, Verdicts& v) {
  FrameReassembler::Frame f;
  for (;;) {
    const FrameReassembler::Status st = ra.next(f);
    if (st == FrameReassembler::Status::kNeedMore) break;
    if (st == FrameReassembler::Status::kOversize) {
      v.events.push_back("oversize");
      ra.clear();  // the transport poisons the stream here
      break;
    }
    std::string e = "frame sid=" + std::to_string(f.sid) +
                    " ctr=" + std::to_string(f.counter) + " body=";
    e += to_hex(Bytes(f.body.begin(), f.body.end()));
    e += " mac=";
    e += to_hex(Bytes(f.mac.begin(), f.mac.end()));
    v.events.push_back(std::move(e));
    ra.consume();
  }
  ra.compact();
}

/// Feeds `stream` at the given split points (positions where the stream is
/// cut into separate feed() calls) and returns every verdict in order.
Verdicts replay(const Bytes& stream, const std::vector<std::size_t>& splits,
                std::size_t max_frame, bool with_mac) {
  FrameReassembler ra(max_frame, with_mac);
  Verdicts v;
  std::size_t at = 0;
  for (const std::size_t s : splits) {
    ra.feed(stream.data() + at, s - at);
    at = s;
    harvest(ra, v);
  }
  ra.feed(stream.data() + at, stream.size() - at);
  harvest(ra, v);
  v.events.push_back("buffered=" + std::to_string(ra.buffered()));
  return v;
}

std::vector<std::size_t> every_byte(std::size_t n) {
  std::vector<std::size_t> s;
  for (std::size_t i = 1; i < n; ++i) s.push_back(i);
  return s;
}

std::vector<std::size_t> random_splits(std::size_t n, Rng& rng) {
  std::vector<std::size_t> s;
  std::size_t at = 0;
  while (n != 0 && at + 1 < n) {
    at += 1 + rng.below(17);
    if (at >= n) break;
    s.push_back(at);
  }
  return s;
}

/// Same corpus loader as test_fuzz.cpp: hex bytes, whitespace ignored,
/// '#' to end of line is a comment.
std::optional<Bytes> load_corpus_frame(const std::filesystem::path& file) {
  std::ifstream in(file);
  if (!in) return std::nullopt;
  Bytes out;
  int hi = -1;
  for (std::string line; std::getline(in, line);) {
    for (char ch : line) {
      if (ch == '#') break;
      if (std::isspace(static_cast<unsigned char>(ch))) continue;
      const int v = std::isdigit(static_cast<unsigned char>(ch)) ? ch - '0'
                    : ch >= 'a' && ch <= 'f'                     ? ch - 'a' + 10
                    : ch >= 'A' && ch <= 'F'                     ? ch - 'A' + 10
                                                                 : -1;
      if (v < 0) return std::nullopt;
      if (hi < 0) {
        hi = v;
      } else {
        out.push_back(static_cast<std::uint8_t>(hi << 4 | v));
        hi = -1;
      }
    }
  }
  if (hi >= 0) return std::nullopt;
  return out;
}

std::vector<Bytes> corpus_bodies() {
  const std::filesystem::path dir = RITAS_TEST_CORPUS_DIR;
  std::vector<std::filesystem::path> files;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".hex") files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  std::vector<Bytes> bodies;
  for (const auto& f : files) {
    auto b = load_corpus_frame(f);
    EXPECT_TRUE(b.has_value()) << "bad hex in " << f;
    if (b) bodies.push_back(std::move(*b));
  }
  return bodies;
}

TEST(FrameReassembler, CorpusBodiesSplitInvariant) {
  // Every corpus entry wrapped as one wire frame, delivered whole vs one
  // byte at a time vs at seeded random split points: identical verdicts.
  // (The corpus bytes are protocol-layer payloads — exactly what rides in
  // a data frame's body — including ones crafted to look like handshake or
  // frame-header bytes, which must not confuse the splitter.)
  const auto bodies = corpus_bodies();
  ASSERT_GE(bodies.size(), 10u) << "corpus went missing";
  Rng rng(20260809);
  for (const bool with_mac : {true, false}) {
    std::size_t idx = 0;
    for (const Bytes& body : bodies) {
      const TestFrame f =
          make_frame(0xD00D + idx, idx, body, with_mac);
      const Bytes stream = f.wire();
      const Verdicts whole = replay(stream, {}, 1u << 20, with_mac);
      const Verdicts bytewise =
          replay(stream, every_byte(stream.size()), 1u << 20, with_mac);
      const Verdicts random =
          replay(stream, random_splits(stream.size(), rng), 1u << 20, with_mac);
      EXPECT_EQ(whole, bytewise) << "corpus body " << idx << " mac=" << with_mac;
      EXPECT_EQ(whole, random) << "corpus body " << idx << " mac=" << with_mac;
      ++idx;
    }
  }
}

TEST(FrameReassembler, ConcatenatedCorpusStreamSplitInvariant) {
  // All corpus bodies back-to-back in ONE stream — boundary bugs that only
  // show when a feed chunk straddles two frames have nowhere to hide.
  const auto bodies = corpus_bodies();
  std::vector<TestFrame> frames;
  std::size_t idx = 0;
  for (const Bytes& body : bodies) {
    frames.push_back(make_frame(0xFEED, idx++, body, true));
  }
  const Bytes stream = concat_wire(frames);
  const Verdicts whole = replay(stream, {}, 1u << 20, true);
  EXPECT_EQ(whole.events.size(), frames.size() + 1);  // +1 terminal buffered=0
  const Verdicts bytewise = replay(stream, every_byte(stream.size()), 1u << 20, true);
  EXPECT_EQ(whole, bytewise);
  Rng rng(424242);
  for (int round = 0; round < 8; ++round) {
    const Verdicts random =
        replay(stream, random_splits(stream.size(), rng), 1u << 20, true);
    EXPECT_EQ(whole, random) << "seeded split round " << round;
  }
}

TEST(FrameReassembler, OversizeVerdictIsGranularityIndependent) {
  // A Byzantine length field must poison the stream at the same point
  // whether the header arrived whole or byte-dribbled — and before the
  // declared body is buffered.
  const std::size_t max_frame = 64;
  TestFrame ok = make_frame(5, 0, patterned_body(10, 1), true);
  Writer bad_hdr(FrameReassembler::kHeaderSize);
  bad_hdr.u32(1u << 30);  // declared body far past max_frame
  bad_hdr.u64(5);
  bad_hdr.u64(1);
  Bytes stream = ok.wire();
  const ByteView bh = bad_hdr.data();
  stream.insert(stream.end(), bh.begin(), bh.end());
  // No body bytes follow — the verdict must not wait for them.
  const Verdicts whole = replay(stream, {}, max_frame, true);
  const Verdicts bytewise = replay(stream, every_byte(stream.size()), max_frame, true);
  EXPECT_EQ(whole, bytewise);
  ASSERT_GE(whole.events.size(), 2u);
  EXPECT_EQ(whole.events[1], "oversize");
}

TEST(FrameReassembler, CompactPreservesPendingBytes) {
  // compact() mid-stream (as the transport does once per drain loop) must
  // never disturb a partially-buffered frame.
  const TestFrame a = make_frame(1, 0, patterned_body(40, 2), true);
  const TestFrame b = make_frame(1, 1, patterned_body(9, 3), true);
  const Bytes wa = a.wire();
  const Bytes wb = b.wire();
  FrameReassembler ra(1u << 20, true);
  ra.feed(wa.data(), wa.size());
  ra.feed(wb.data(), 5);  // partial header of frame b
  Verdicts v;
  harvest(ra, v);  // consumes frame a, compacts, keeps b's prefix
  ASSERT_EQ(v.events.size(), 1u);
  EXPECT_EQ(ra.buffered(), 5u);
  ra.feed(wb.data() + 5, wb.size() - 5);
  harvest(ra, v);
  ASSERT_EQ(v.events.size(), 2u);
  EXPECT_EQ(ra.buffered(), 0u);
}

}  // namespace
}  // namespace ritas::net
