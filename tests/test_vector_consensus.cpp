// Vector consensus: agreement on a vector with n-f-ish entries, the
// f+1-correct-entries property, and faultloads.
#include "core/vector_consensus.h"

#include <gtest/gtest.h>

#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::fast_lan;
using test::run_vc;

std::vector<Bytes> indexed(std::uint32_t n) {
  std::vector<Bytes> v;
  for (std::uint32_t p = 0; p < n; ++p) v.push_back(to_bytes("v" + std::to_string(p)));
  return v;
}

TEST(VectorConsensus, AllCorrectDecideSameVector) {
  Cluster c(fast_lan(4, 1));
  auto cap = run_vc(c, indexed(4));
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  EXPECT_TRUE(cap.agree(c.correct_set()));
}

TEST(VectorConsensus, VectorEntriesAreProposalsOrBottom) {
  Cluster c(fast_lan(4, 2));
  const auto proposals = indexed(4);
  auto cap = run_vc(c, proposals);
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  const auto& v = *cap.got[0];
  ASSERT_EQ(v.size(), 4u);
  std::uint32_t filled = 0;
  for (ProcessId p = 0; p < 4; ++p) {
    if (v[p].has_value()) {
      EXPECT_EQ(*v[p], proposals[p]) << "entry " << p << " is not p's proposal";
      ++filled;
    }
  }
  // At least n-f entries are present, and at least f+1 from correct
  // processes (here all processes are correct).
  EXPECT_GE(filled, 3u);
}

TEST(VectorConsensus, CrashedProcessEntryMayBeBottomButOthersPresent) {
  test::ClusterOptions o = fast_lan(4, 3);
  o.crashed = {2};
  Cluster c(o);
  auto cap = run_vc(c, indexed(4));
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  EXPECT_TRUE(cap.agree(c.correct_set()));
  const auto& v = *cap.got[0];
  EXPECT_FALSE(v[2].has_value());  // the crashed process proposed nothing
  std::uint32_t correct_entries = 0;
  for (ProcessId p : c.correct_set()) {
    if (v[p].has_value()) ++correct_entries;
  }
  EXPECT_GE(correct_entries, 2u);  // f+1 with f=1
}

TEST(VectorConsensus, ByzantineFaultloadStillAgrees) {
  test::ClusterOptions o = fast_lan(4, 4);
  o.byzantine = {3};
  Cluster c(o);
  auto cap = run_vc(c, indexed(4));
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  EXPECT_TRUE(cap.agree(c.correct_set()));
  const auto& v = *cap.got[0];
  // f+1 = 2 entries from correct processes.
  std::uint32_t correct_entries = 0;
  for (ProcessId p : c.correct_set()) {
    if (v[p].has_value()) ++correct_entries;
  }
  EXPECT_GE(correct_entries, 2u);
}

TEST(VectorConsensus, JitterManySeeds) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    test::ClusterOptions o = fast_lan(4, 20 + seed);
    o.lan.jitter_ns = 250'000;
    Cluster c(o);
    auto cap = run_vc(c, indexed(4));
    ASSERT_TRUE(cap.all_set(c.correct_set())) << "seed " << seed;
    EXPECT_TRUE(cap.agree(c.correct_set())) << "seed " << seed;
  }
}

class VcGroupSize : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(VcGroupSize, AgreesAcrossGroupSizes) {
  const std::uint32_t n = GetParam();
  Cluster c(fast_lan(n, 60 + n));
  auto cap = run_vc(c, indexed(n));
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  EXPECT_TRUE(cap.agree(c.correct_set()));
  // f+1 correct entries.
  const auto& v = *cap.got[0];
  std::uint32_t correct_entries = 0;
  for (ProcessId p : c.correct_set()) {
    if (v[p].has_value()) ++correct_entries;
  }
  EXPECT_GE(correct_entries, max_faults(n) + 1);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, VcGroupSize, ::testing::Values(4u, 7u, 10u));

TEST(VectorConsensus, EncodingRoundTrips) {
  VectorConsensus::Vector v(4);
  v[0] = to_bytes("a");
  v[2] = Bytes{};
  const Bytes enc = VectorConsensus::encode_vector(v);
  auto dec = VectorConsensus::decode_vector(enc, 4);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, v);
  // Wrong n rejected.
  EXPECT_FALSE(VectorConsensus::decode_vector(enc, 5).has_value());
  // Truncation rejected.
  Bytes cut(enc.begin(), enc.end() - 1);
  EXPECT_FALSE(VectorConsensus::decode_vector(cut, 4).has_value());
}

TEST(VectorConsensus, RoundsUsedStaysWithinF) {
  test::ClusterOptions o = fast_lan(7, 9);
  o.crashed = {5, 6};  // f = 2 for n = 7
  Cluster c(o);
  test::Capture<VectorConsensus::Vector> cap(7);
  std::vector<VectorConsensus*> insts(7, nullptr);
  const InstanceId id = InstanceId::root(ProtocolType::kVectorConsensus, 1);
  for (ProcessId p : c.live()) {
    insts[p] = &c.create_root<VectorConsensus>(p, id, Attribution::kAgreement,
                                               cap.sink(p));
  }
  auto props = indexed(7);
  for (ProcessId p : c.live()) {
    c.call(p, [&, p] { insts[p]->propose(props[p]); });
  }
  ASSERT_TRUE(c.run_until([&] { return cap.all_set(c.correct_set()); },
                          test::kDeadline));
  for (ProcessId p : c.correct_set()) {
    EXPECT_LE(insts[p]->rounds_used(), max_faults(7));
  }
}

}  // namespace
}  // namespace ritas
