#include "sim/wan_model.h"

#include <gtest/gtest.h>

namespace ritas::sim {
namespace {

// The table bench_wan shipped with before the model was factored out; the
// canonical profile must keep reproducing it bit-for-bit.
constexpr Time kLegacyBenchWanMs[4][4] = {
    {0, 5, 40, 90}, {5, 0, 35, 85}, {45, 38, 0, 60}, {95, 88, 65, 0}};

TEST(WanModel, CanonicalTableKeepsLegacyBenchWanBlock) {
  for (std::uint32_t a = 0; a < 4; ++a) {
    for (std::uint32_t b = 0; b < 4; ++b) {
      EXPECT_EQ(canonical_site_delay(a, b), kLegacyBenchWanMs[a][b] * kMillisecond)
          << "site " << a << " -> " << b;
    }
  }
}

TEST(WanModel, CanonicalTableIsAsymmetric) {
  // The whole point of the WAN model (§4.2's caveat): A->B != B->A for at
  // least some pairs, and the diagonal is zero.
  bool any_asymmetric = false;
  for (std::uint32_t a = 0; a < kCanonicalSites; ++a) {
    EXPECT_EQ(canonical_site_delay(a, a), 0u);
    for (std::uint32_t b = 0; b < kCanonicalSites; ++b) {
      if (a == b) continue;
      EXPECT_GT(canonical_site_delay(a, b), 0u);
      if (canonical_site_delay(a, b) != canonical_site_delay(b, a)) {
        any_asymmetric = true;
      }
    }
  }
  EXPECT_TRUE(any_asymmetric);
}

TEST(WanModel, ProfileMapsProcessesRoundRobin) {
  const WanModelConfig cfg = wan_profile(10, {.sites = 4});
  ASSERT_EQ(cfg.site_of.size(), 10u);
  for (std::uint32_t p = 0; p < 10; ++p) EXPECT_EQ(cfg.site_of[p], p % 4);
  ASSERT_EQ(cfg.links.size(), 4u);
  EXPECT_EQ(cfg.links[0][3].base_delay_ns, 90 * kMillisecond);
  EXPECT_EQ(cfg.links[3][0].base_delay_ns, 95 * kMillisecond);
}

TEST(WanModel, PlainDelayIsBaseOnly) {
  WanModel m(wan_profile(8, {.sites = 4}), /*seed=*/7);
  // p0 (site 0) -> p3 (site 3): base one-way, no jitter/loss configured.
  EXPECT_EQ(m.extra_delay(0, 3, 0), 90 * kMillisecond);
  // Intra-site (p0 and p4 both live at site 0): LAN only, no extra.
  EXPECT_EQ(m.extra_delay(0, 4, 0), 0u);
}

TEST(WanModel, JitterStaysInBoundAndIsSeeded) {
  const WanProfileOptions opt{.sites = 4, .jitter_permille = 100};
  const Time base = 90 * kMillisecond;
  const Time bound = base / 1000 * 100;  // 10% of the one-way delay
  WanModel a(wan_profile(4, opt), 42);
  WanModel b(wan_profile(4, opt), 42);
  WanModel c(wan_profile(4, opt), 43);
  bool any_jitter = false;
  bool diverged = false;
  for (int i = 0; i < 64; ++i) {
    const Time da = a.extra_delay(0, 3, 0);
    const Time db = b.extra_delay(0, 3, 0);
    const Time dc = c.extra_delay(0, 3, 0);
    EXPECT_GE(da, base);
    EXPECT_LT(da, base + bound);
    EXPECT_EQ(da, db);  // same seed => identical stream
    any_jitter = any_jitter || da != base;
    diverged = diverged || da != dc;
  }
  EXPECT_TRUE(any_jitter);
  EXPECT_TRUE(diverged);  // different seed => different stream
}

TEST(WanModel, LossAddsRtoMultiplesNeverDrops) {
  // 30% modeled loss: over 256 frames some must draw >= 1 retransmission,
  // and every delay is base + k * rto exactly (jitter off).
  WanProfileOptions opt{.sites = 4, .loss_ppm = 300'000};
  opt.rto_ns = 50 * kMillisecond;
  WanModel m(wan_profile(4, opt), 11);
  const Time base = 5 * kMillisecond;  // site 0 -> 1
  for (int i = 0; i < 256; ++i) {
    const Time d = m.extra_delay(0, 1, 0);
    EXPECT_GE(d, base);
    EXPECT_EQ((d - base) % opt.rto_ns, 0u);
  }
  EXPECT_GT(m.retransmissions(), 0u);
}

TEST(WanModel, KillWindowHoldsFramesUntilHeal) {
  WanModelConfig cfg;  // no sites: pure-LAN shape, kills only
  cfg.kills.push_back({1, 2, 100 * kMillisecond, 200 * kMillisecond});
  WanModel m(std::move(cfg), 1);
  // Outside the window: nothing.
  EXPECT_EQ(m.extra_delay(1, 2, 50 * kMillisecond), 0u);
  EXPECT_EQ(m.extra_delay(1, 2, 200 * kMillisecond), 0u);
  // Inside: held until the heal instant, both directions.
  EXPECT_EQ(m.extra_delay(1, 2, 150 * kMillisecond), 50 * kMillisecond);
  EXPECT_EQ(m.extra_delay(2, 1, 199 * kMillisecond), 1 * kMillisecond);
  // Other links unaffected.
  EXPECT_EQ(m.extra_delay(0, 3, 150 * kMillisecond), 0u);
}

TEST(WanModel, SitesClampedToCanonicalRange) {
  const WanModelConfig cfg = wan_profile(4, {.sites = 99});
  ASSERT_EQ(cfg.links.size(), std::size_t{kCanonicalSites});
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_LT(cfg.site_of[p], kCanonicalSites);
  }
}

}  // namespace
}  // namespace ritas::sim
