#!/usr/bin/env python3
"""Fail CI when headline bench figures regress against committed baselines.

The paper-replication benches run on the deterministic simulator and report
VIRTUAL-time numbers, so the JSON artifacts are machine-independent: a
baseline committed in bench/baselines/ is comparable across laptops and CI
runners alike (generate baselines with the same RITAS_BENCH_RUNS as
bench-smoke, currently 3). Two headline figures are gated:

  * fig4 batched throughput  — BENCH_fig4_failure_free.json, the batched
    rows' throughput_msgs_s per (burst, msg_bytes) must not drop more than
    the tolerance below baseline.
  * buffer frames encoded    — BENCH_buffer.json, the zero-copy layer's
    frames_encoded per (msg_bytes, batched) must not grow more than the
    tolerance above baseline (fewer encodes is the whole point). The same
    artifact's syscall_rows (real-TCP transport batching, real-time) are
    checked shape-only against the bench's own floors: >= min_fps frames
    per sendmsg on the 10 B batched burst, > 1 on every batched cell, and
    zero payload bytes copied assembling batches.
  * variant matrix           — BENCH_variants.json, every in-binary shape
    gate must hold (imbs-raynal beats bracha RB on latency and messages,
    crain uses fewer messages per decision, all cells completed), and per
    (combo, faultload, n) the RB/BC latencies must not grow more than the
    tolerance above baseline. Message counts per instance are exact on the
    deterministic simulator, so they are compared exactly.
  * scaling_wan campaign     — BENCH_scaling_wan.json, the open-loop
    n-scaling battery. Virtual-time rows only: per (n, net, fault) cell
    (intersection with baseline, so a trimmed RITAS_SCALING_SMOKE run is
    checked against the same rows of a full-sweep baseline) completed and
    ordered must be true, every offered op must have been delivered, and
    the p50/p99/p999 delivery tails must not grow more than the tolerance
    above baseline.
  * execution pipeline       — BENCH_pipeline.json is the one REAL-TIME
    artifact: absolute ops/s depend on the host, so the fresh run is
    checked against its own in-binary gates instead of baseline numbers.
    Every sweep cell must have completed with zero handoff drops, and —
    only when the fresh run reports gate_enforced (hardware guard:
    hw_threads >= 2n, overridable via RITAS_PIPELINE_GATE) — the T=2
    aggregate throughput must reach min_speedup_t2 x the T=1 figure. When
    both fresh and baseline runs were enforced, the speedup ratio itself
    must also stay within tolerance of the baseline ratio.

Usage:  check_bench_regression.py <bench-out-dir> [--baselines DIR]
                                  [--tolerance 0.20]
                                  [--checks fig4,buffer,variants,pipeline]

Exit codes: 0 ok, 1 regression or malformed/missing artifact.
Refreshing a baseline intentionally (protocol change, retuned batching) is
one commit: rerun the bench with RITAS_BENCH_RUNS=3 and copy the JSON over
bench/baselines/, explaining the shift in EXPERIMENTS.md.
"""

import argparse
import json
import sys
from pathlib import Path


def load(directory: Path, name: str) -> dict:
    path = directory / name
    if not path.is_file():
        sys.exit(f"FAIL {name}: not found in {directory}")
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as e:
        sys.exit(f"FAIL {name}: invalid JSON: {e}")
    if "rows" not in doc or not doc["rows"]:
        sys.exit(f"FAIL {name}: no rows")
    return doc


def index_rows(doc: dict, keys: tuple) -> dict:
    out = {}
    for row in doc["rows"]:
        try:
            out[tuple(row[k] for k in keys)] = row
        except KeyError as e:
            sys.exit(f"FAIL: row missing key {e}: {row}")
    return out


def check_fig4(out_dir: Path, base_dir: Path, tol: float) -> list:
    """Batched throughput must stay within tol of baseline (higher is ok)."""
    name = "BENCH_fig4_failure_free.json"
    fresh = index_rows(load(out_dir, name), ("burst", "msg_bytes", "batched"))
    base = index_rows(load(base_dir, name), ("burst", "msg_bytes", "batched"))
    failures = []
    for key, brow in sorted(base.items()):
        if not key[2]:  # only the batched configuration is gated
            continue
        if key not in fresh:
            failures.append(f"fig4 {key}: row disappeared")
            continue
        got = fresh[key]["throughput_msgs_s"]
        want = brow["throughput_msgs_s"]
        floor = want * (1.0 - tol)
        verdict = "ok" if got >= floor else "REGRESSED"
        print(f"fig4 burst={key[0]} m={key[1]}B batched: "
              f"{got:.0f} vs baseline {want:.0f} msgs/s "
              f"(floor {floor:.0f}) {verdict}")
        if got < floor:
            failures.append(
                f"fig4 {key}: throughput {got:.0f} < floor {floor:.0f} "
                f"(baseline {want:.0f}, tolerance {tol:.0%})")
    return failures


def check_buffer(out_dir: Path, base_dir: Path, tol: float) -> list:
    """frames_encoded must stay within tol of baseline (fewer is ok), and
    the transport syscall-batching gates hold, re-derived from the fresh
    syscall_rows (real-time loopback numbers: shape-only, no baseline)."""
    name = "BENCH_buffer.json"
    fresh_doc = load(out_dir, name)
    fresh = index_rows(fresh_doc, ("msg_bytes", "batched"))
    base = index_rows(load(base_dir, name), ("msg_bytes", "batched"))
    failures = []
    for key, brow in sorted(base.items()):
        if key not in fresh:
            failures.append(f"buffer {key}: row disappeared")
            continue
        got = fresh[key]["frames_encoded"]
        want = brow["frames_encoded"]
        ceiling = want * (1.0 + tol)
        verdict = "ok" if got <= ceiling else "REGRESSED"
        print(f"buffer m={key[0]}B batched={key[1]}: "
              f"{got} vs baseline {want} frames encoded "
              f"(ceiling {ceiling:.0f}) {verdict}")
        if got > ceiling:
            failures.append(
                f"buffer {key}: frames_encoded {got} > ceiling {ceiling:.0f} "
                f"(baseline {want}, tolerance {tol:.0%})")

    # Transport fast path: multi-frame sendmsg batching. The 10 B bursty
    # workload must pack >= syscall_gate_min_fps frames per syscall, every
    # batched cell must beat one-frame-per-syscall, and batch assembly must
    # copy zero payload bytes; all re-derived from the rows, the bench's
    # own meta verdicts must agree.
    sys_rows = fresh_doc.get("syscall_rows")
    if not sys_rows:
        return failures + ["buffer: syscall_rows missing from artifact"]
    meta = fresh_doc.get("meta", {})
    min_fps = meta.get("syscall_gate_min_fps", 4.0)
    by_key = {(r["msg_bytes"], r["batched"]): r for r in sys_rows}
    for (m, batched), row in sorted(by_key.items()):
        fps = row["frames_per_syscall"]
        copied = row["batch_copy_bytes"]
        floor = min_fps if (batched and m == 10) else (1.0 if batched else 0.0)
        verdict = "ok" if fps >= floor and copied == 0 else "REGRESSED"
        print(f"buffer syscalls m={m}B batched={batched}: "
              f"{fps:.1f} frames/sendmsg (floor {floor:.1f}), "
              f"copied {copied} B {verdict}")
        if fps < floor:
            failures.append(
                f"buffer syscalls ({m}, {batched}): frames_per_syscall "
                f"{fps:.2f} < floor {floor:.1f}")
        if copied != 0:
            failures.append(
                f"buffer syscalls ({m}, {batched}): batch assembly copied "
                f"{copied} payload bytes (must be 0)")
    if (10, True) not in by_key:
        failures.append("buffer syscalls: 10 B batched row missing")
    for gate in ("gate_frames_per_syscall_ok", "gate_batch_zero_copy_ok"):
        ok = meta.get(gate)
        print(f"buffer meta {gate}: {ok}")
        if ok is not True:
            failures.append(f"buffer: meta gate {gate} is {ok!r}")
    return failures


def check_variants(out_dir: Path, base_dir: Path, tol: float) -> list:
    """Shape gates must hold; latencies within tol; message counts exact."""
    name = "BENCH_variants.json"
    fresh_doc = load(out_dir, name)
    keys = ("rb_variant", "bc_variant", "faultload", "n")
    fresh = index_rows(fresh_doc, keys)
    base = index_rows(load(base_dir, name), keys)
    failures = []

    meta = fresh_doc.get("meta", {})
    for gate in ("gate_rb_latency_ok", "gate_rb_msgs_ok", "gate_bc_msgs_ok",
                 "all_completed"):
        ok = meta.get(gate)
        print(f"variants meta {gate}: {ok}")
        if ok is not True:
            failures.append(f"variants: meta gate {gate} is {ok!r}")

    for key, brow in sorted(base.items()):
        if key not in fresh:
            failures.append(f"variants {key}: row disappeared")
            continue
        frow = fresh[key]
        if brow.get("skipped"):
            if not frow.get("skipped"):
                print(f"variants {key}: now runs (was skipped) ok")
            continue
        if frow.get("skipped"):
            failures.append(f"variants {key}: newly skipped")
            continue
        for field in ("rb_msgs_per_bcast", "bc_msgs_per_decide"):
            got, want = frow[field], brow[field]
            verdict = "ok" if got == want else "CHANGED"
            print(f"variants {key} {field}: {got} vs baseline {want} {verdict}")
            if got != want:
                failures.append(
                    f"variants {key}: {field} {got} != baseline {want} "
                    f"(message counts are deterministic)")
        for field in ("rb_latency_us", "bc_latency_us"):
            got, want = frow[field], brow[field]
            ceiling = want * (1.0 + tol)
            verdict = "ok" if got <= ceiling else "REGRESSED"
            print(f"variants {key} {field}: {got:.1f} vs baseline {want:.1f} "
                  f"(ceiling {ceiling:.1f}) {verdict}")
            if got > ceiling:
                failures.append(
                    f"variants {key}: {field} {got:.1f} > ceiling "
                    f"{ceiling:.1f} (baseline {want:.1f}, tolerance {tol:.0%})")
    return failures


def check_pipeline(out_dir: Path, base_dir: Path, tol: float) -> list:
    """Re-derive the pipeline bench's in-binary gates from its artifact.

    Real-time numbers: no absolute throughput comparison against baseline.
    """
    name = "BENCH_pipeline.json"
    fresh_doc = load(out_dir, name)
    base_doc = load(base_dir, name)
    failures = []

    meta = fresh_doc.get("meta", {})
    for gate in ("all_done", "no_drops", "gate_speedup_ok"):
        ok = meta.get(gate)
        print(f"pipeline meta {gate}: {ok}")
        if ok is not True:
            failures.append(f"pipeline: meta gate {gate} is {ok!r}")

    smr = {row["reactor_threads"]: row
           for row in fresh_doc["rows"] if row.get("kind") == "smr"}
    for t in (0, 1, 2, 4):
        row = smr.get(t)
        if row is None:
            failures.append(f"pipeline: smr row for T={t} disappeared")
            continue
        ok = row.get("completed") is True and row.get("handoff_dropped") == 0
        print(f"pipeline T={t}: completed={row.get('completed')} "
              f"dropped={row.get('handoff_dropped')} "
              f"{'ok' if ok else 'FAILED'}")
        if not ok:
            failures.append(
                f"pipeline T={t}: completed={row.get('completed')} "
                f"handoff_dropped={row.get('handoff_dropped')}")
    if not any(row.get("kind") == "verify" for row in fresh_doc["rows"]):
        failures.append("pipeline: verify-latency rows disappeared")

    enforced = meta.get("gate_enforced") is True
    speedup = meta.get("speedup_t2", 0.0)
    floor = meta.get("min_speedup_t2", 1.3)
    print(f"pipeline speedup_t2: {speedup:.2f}x "
          f"(floor {floor:.2f}x, {'enforced' if enforced else 'report-only'}"
          f", hw_threads={meta.get('hw_threads')})")
    if enforced and speedup < floor:
        failures.append(
            f"pipeline: speedup_t2 {speedup:.2f} < floor {floor:.2f} "
            f"(gate enforced, hw_threads={meta.get('hw_threads')})")

    base_meta = base_doc.get("meta", {})
    if enforced and base_meta.get("gate_enforced") is True:
        want = base_meta.get("speedup_t2", 0.0)
        ratio_floor = want * (1.0 - tol)
        verdict = "ok" if speedup >= ratio_floor else "REGRESSED"
        print(f"pipeline speedup_t2 vs baseline: {speedup:.2f} vs "
              f"{want:.2f} (floor {ratio_floor:.2f}) {verdict}")
        if speedup < ratio_floor:
            failures.append(
                f"pipeline: speedup_t2 {speedup:.2f} < baseline floor "
                f"{ratio_floor:.2f} (baseline {want:.2f}, tolerance "
                f"{tol:.0%})")
    return failures


def check_scaling_wan(out_dir: Path, base_dir: Path, tol: float) -> list:
    """Open-loop campaign cells: liveness/order exact, tails within tol.

    Keys are intersected so a trimmed smoke sweep (RITAS_SCALING_SMOKE=1)
    validates against the full-sweep baseline: per-cell seeds derive from
    the (n, net, fault) key, so shared rows are the same virtual runs.
    """
    name = "BENCH_scaling_wan.json"
    keys = ("n", "net", "fault")
    fresh = index_rows(load(out_dir, name), keys)
    base = index_rows(load(base_dir, name), keys)
    failures = []

    shared = sorted(set(fresh) & set(base))
    if not shared:
        return [f"scaling_wan: no (n, net, fault) keys shared with baseline"]
    for key in shared:
        frow, brow = fresh[key], base[key]
        cell = f"scaling_wan n={key[0]} {key[1]}/{key[2]}"
        if not (frow.get("completed") is True and frow.get("ordered") is True):
            failures.append(
                f"{cell}: completed={frow.get('completed')} "
                f"ordered={frow.get('ordered')}")
            continue
        if frow.get("ops_completed") != frow.get("ops"):
            failures.append(
                f"{cell}: delivered {frow.get('ops_completed')} of "
                f"{frow.get('ops')} offered ops")
        for field in ("p50_ns", "p99_ns", "p999_ns"):
            got, want = frow[field], brow[field]
            ceiling = want * (1.0 + tol)
            verdict = "ok" if got <= ceiling else "REGRESSED"
            print(f"{cell} {field}: {got} vs baseline {want} "
                  f"(ceiling {ceiling:.0f}) {verdict}")
            if got > ceiling:
                failures.append(
                    f"{cell}: {field} {got} > ceiling {ceiling:.0f} "
                    f"(baseline {want}, tolerance {tol:.0%})")
    return failures


CHECKS = {
    "fig4": check_fig4,
    "buffer": check_buffer,
    "variants": check_variants,
    "pipeline": check_pipeline,
    "scaling_wan": check_scaling_wan,
}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_dir", type=Path,
                    help="directory holding the freshly produced BENCH_*.json")
    ap.add_argument("--baselines", type=Path, default=Path("bench/baselines"),
                    help="directory holding the committed baseline JSONs")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed relative regression (default 0.20)")
    ap.add_argument("--checks", default="fig4,buffer,variants,pipeline",
                    help="comma-separated subset of checks to run "
                         f"(known: {','.join(sorted(CHECKS))})")
    args = ap.parse_args()

    selected = [c.strip() for c in args.checks.split(",") if c.strip()]
    unknown = [c for c in selected if c not in CHECKS]
    if unknown:
        sys.exit(f"FAIL: unknown checks {unknown} "
                 f"(known: {','.join(sorted(CHECKS))})")

    failures = []
    for check in selected:
        failures += CHECKS[check](args.bench_dir, args.baselines,
                                  args.tolerance)

    if failures:
        print("\nPERF REGRESSION:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nall headline figures within tolerance of committed baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
