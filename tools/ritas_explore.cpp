// ritas_explore — deterministic schedule exploration from the command line.
//
// Explore mode runs a seeded trial matrix against one protocol workload,
// checks every trial with the per-layer property oracles, and on the first
// failure shrinks the schedule and writes a replayable artifact:
//
//   $ ritas_explore --workload bc --seeds 1:200
//   $ ritas_explore --workload bc --seeds 1:200 --weak-bc-quorum --out-dir .
//   ... violation found: wrote schedule_137.json (exit code 2)
//
// Replay mode re-executes a saved artifact and verifies the failure
// reproduces bit-identically (same observation-stream fingerprint):
//
//   $ ritas_explore --replay schedule_137.json
//
// Exit codes: 0 = clean sweep / faithful replay, 1 = usage or I/O error,
// 2 = violation found (explore), 3 = replay did not reproduce.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "common/json.h"
#include "sim/explore.h"
#include "sim/wan_model.h"

using namespace ritas;
using sim::Explorer;
using sim::Finding;
using sim::Schedule;
using sim::TrialResult;
using sim::Workload;

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload rb|eb|bc|mvc|vc|ab] [--n N] [--seeds FIRST[:COUNT]]\n"
      "          [--messages M] [--max-events E] [--coin local|dealt]\n"
      "          [--rb-variant bracha|imbs-raynal] [--bc-variant bracha|crain]\n"
      "          [--weak-bc-quorum] [--stall-is-violation] [--out-dir DIR]\n"
      "          [--wan] [--wan-sites S] [--wan-jitter-permille J]\n"
      "          [--wan-loss-ppm L] [--json]\n"
      "       %s --replay schedule_<seed>.json\n",
      argv0, argv0);
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The artifact wrapper: the schedule plus what it produced, so a replay
/// can verify faithfulness without re-deriving anything.
std::string artifact_json(const Finding& f) {
  JsonWriter w;
  w.begin_object();
  w.field("version", std::uint64_t{1});
  w.field("tool", "ritas_explore");
  w.field("trial_seed", f.trial_seed);
  w.field("from_stall", f.from_stall);
  w.field("original_size", static_cast<std::uint64_t>(f.schedule.size()));
  w.field("minimized_size", static_cast<std::uint64_t>(f.minimized.size()));
  w.field("shrink_trials", static_cast<std::uint64_t>(f.shrink_trials));
  w.field("events", f.result.events);
  w.field("end_time_ns", f.result.end_time);
  w.field("fingerprint", f.result.fingerprint);
  w.key("violations").begin_array();
  for (const std::string& v : f.result.violations) w.value(v);
  w.end_array();
  // from_json descends into this member, so the whole artifact replays.
  w.key("schedule");
  // Schedule::to_json returns a complete object; splice it verbatim.
  std::string sched = f.minimized.to_json();
  std::string head = w.take();
  return head + sched + "}";
}

int replay(const std::string& path) {
  const auto text = read_file(path);
  if (!text) {
    std::fprintf(stderr, "ritas_explore: cannot read %s\n", path.c_str());
    return 1;
  }
  const auto sched = Schedule::from_json(*text);
  if (!sched) {
    std::fprintf(stderr, "ritas_explore: %s is not a valid schedule artifact\n",
                 path.c_str());
    return 1;
  }
  const auto doc = json_parse(*text);
  std::optional<std::uint64_t> recorded_fp;
  std::optional<bool> from_stall;
  if (doc.has_value()) {
    recorded_fp = doc->u64_at("fingerprint");
    from_stall = doc->bool_at("from_stall");
  }

  const TrialResult r = Explorer::run_trial(*sched);
  std::printf("replay %s: seed=%llu workload=%s n=%u\n", path.c_str(),
              static_cast<unsigned long long>(sched->seed),
              sim::workload_name(sched->workload), sched->n);
  std::printf("  events=%llu end_time=%llu ns fingerprint=%llu\n",
              static_cast<unsigned long long>(r.events),
              static_cast<unsigned long long>(r.end_time),
              static_cast<unsigned long long>(r.fingerprint));
  for (const std::string& v : r.violations) {
    std::printf("  violation: %s\n", v.c_str());
  }
  if (r.stalled) std::printf("  stalled (liveness budget exhausted)\n");

  if (recorded_fp && *recorded_fp != r.fingerprint) {
    std::printf("  MISMATCH: artifact recorded fingerprint %llu\n",
                static_cast<unsigned long long>(*recorded_fp));
    return 3;
  }
  const bool want_stall = from_stall.value_or(false);
  const bool reproduced = want_stall ? r.stalled : !r.violations.empty();
  if (!reproduced) {
    std::printf("  NOT REPRODUCED: replay ran clean\n");
    return 3;
  }
  std::printf("  reproduced%s\n", recorded_fp ? " (fingerprint matches)" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Explorer::Config cfg;
  std::uint64_t first_seed = 1;
  std::uint64_t seed_count = 100;
  std::string out_dir = ".";
  std::string replay_path;
  bool json_out = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      const auto w = sim::workload_from_name(next());
      if (!w) {
        usage(argv[0]);
        return 1;
      }
      cfg.workload = *w;
    } else if (arg == "--n") {
      cfg.n = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
      if (cfg.n < 1 || cfg.n > 32) {
        std::fprintf(stderr, "ritas_explore: --n must be in [1, 32]\n");
        return 1;
      }
    } else if (arg == "--seeds") {
      const char* spec = next();
      char* colon = nullptr;
      first_seed = std::strtoull(spec, &colon, 10);
      seed_count = (colon != nullptr && *colon == ':')
                       ? std::strtoull(colon + 1, nullptr, 10)
                       : 1;
      if (seed_count == 0) seed_count = 1;
    } else if (arg == "--messages") {
      cfg.messages = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
      if (cfg.messages == 0) cfg.messages = 1;
    } else if (arg == "--max-events") {
      cfg.max_events = std::strtoull(next(), nullptr, 10);
      if (cfg.max_events == 0) cfg.max_events = 1;
    } else if (arg == "--coin") {
      const std::string c = next();
      if (c == "local") {
        cfg.coin_mode = CoinMode::kLocal;
      } else if (c == "dealt") {
        cfg.coin_mode = CoinMode::kDealt;
      } else {
        usage(argv[0]);
        return 1;
      }
    } else if (arg == "--rb-variant") {
      const auto v = ritas::rb_variant_from_name(next());
      if (!v) {
        std::fprintf(stderr, "ritas_explore: --rb-variant bracha|imbs-raynal\n");
        return 1;
      }
      cfg.variants.rb = *v;
    } else if (arg == "--bc-variant") {
      const auto v = ritas::bc_variant_from_name(next());
      if (!v) {
        std::fprintf(stderr, "ritas_explore: --bc-variant bracha|crain\n");
        return 1;
      }
      cfg.variants.bc = *v;
    } else if (arg == "--wan") {
      cfg.wan.enabled = true;
    } else if (arg == "--wan-sites") {
      cfg.wan.enabled = true;
      cfg.wan.sites = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
      if (cfg.wan.sites < 1 || cfg.wan.sites > sim::kCanonicalSites) {
        std::fprintf(stderr, "ritas_explore: --wan-sites must be in [1, %u]\n",
                     sim::kCanonicalSites);
        return 1;
      }
    } else if (arg == "--wan-jitter-permille") {
      cfg.wan.enabled = true;
      cfg.wan.jitter_permille =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
      if (cfg.wan.jitter_permille > 1000) {
        std::fprintf(stderr,
                     "ritas_explore: --wan-jitter-permille must be <= 1000\n");
        return 1;
      }
    } else if (arg == "--wan-loss-ppm") {
      cfg.wan.enabled = true;
      cfg.wan.loss_ppm =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
      if (cfg.wan.loss_ppm >= 1'000'000) {
        std::fprintf(stderr,
                     "ritas_explore: --wan-loss-ppm must be < 1000000\n");
        return 1;
      }
    } else if (arg == "--weak-bc-quorum") {
      cfg.weak_bc_quorum = true;
    } else if (arg == "--stall-is-violation") {
      cfg.stall_is_violation = true;
    } else if (arg == "--out-dir") {
      out_dir = next();
    } else if (arg == "--json") {
      json_out = true;
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      usage(argv[0]);
      return 1;
    }
  }

  if (!replay_path.empty()) return replay(replay_path);

  try {
    // Surface incompatible variant selections (e.g. imbs-raynal below
    // n = 6) here, not as a crash inside the first trial.
    ritas::validate_variants(cfg.variants, cfg.n,
                             cfg.variants.bc == ritas::BcVariant::kCrain
                                 ? CoinMode::kDealt
                                 : cfg.coin_mode);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "ritas_explore: %s\n", e.what());
    return 1;
  }

  Explorer explorer(cfg);
  const auto finding = explorer.explore(first_seed, seed_count);
  const Metrics& m = explorer.metrics();

  if (json_out) {
    JsonWriter w;
    w.begin_object();
    w.field("workload", sim::workload_name(cfg.workload));
    w.field("n", static_cast<std::uint64_t>(cfg.n));
    w.field("first_seed", first_seed);
    w.field("seed_count", seed_count);
    w.field("explore_trials", m.explore_trials);
    w.field("explore_violations", m.explore_violations);
    w.field("explore_stalls", m.explore_stalls);
    w.field("found", finding.has_value());
    if (finding) w.field("trial_seed", finding->trial_seed);
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf(
        "explored %llu trials (workload=%s n=%u messages=%u): "
        "%llu violations, %llu stalls\n",
        static_cast<unsigned long long>(m.explore_trials),
        sim::workload_name(cfg.workload), cfg.n, cfg.messages,
        static_cast<unsigned long long>(m.explore_violations),
        static_cast<unsigned long long>(m.explore_stalls));
  }

  if (!finding) return 0;

  const std::string name = sim::schedule_filename(finding->trial_seed);
  const std::string path = out_dir + "/" + name;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "ritas_explore: cannot write %s\n", path.c_str());
      return 1;
    }
    out << artifact_json(*finding) << "\n";
  }
  std::printf("violation at seed %llu (%s): schedule size %zu -> %zu after %u "
              "shrink trials\n",
              static_cast<unsigned long long>(finding->trial_seed),
              finding->from_stall ? "liveness" : "safety",
              finding->schedule.size(), finding->minimized.size(),
              finding->shrink_trials);
  for (const std::string& v : finding->result.violations) {
    std::printf("  %s\n", v.c_str());
  }
  std::printf("wrote %s (replay with --replay)\n", path.c_str());
  return 2;
}
